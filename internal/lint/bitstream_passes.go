package lint

import (
	"fmt"

	"repro/internal/bitstream"
)

func cellPos(name string, i int, x, y int) string {
	return fmt.Sprintf("%s: cell %d at (%d,%d)", name, i, x, y)
}

// passBitstreamBounds verifies that a relocatable bitstream is
// self-contained inside its claimed W x H region: every cell write and
// every region-relative source lands inside the region, every port
// reference is in range, no two writes target the same cell, and —
// when a device geometry is supplied — the region and port count fit
// the device. These are exactly the properties that make a bitstream
// safe to download at any origin (the paper's relocatable partitions)
// and to split into pages that never write outside the region.
func passBitstreamBounds(t *Target, r *Reporter) {
	b := t.Bitstream
	if b == nil {
		return
	}
	if b.W <= 0 || b.H <= 0 {
		r.Errorf(b.Name+": region", "empty region %dx%d", b.W, b.H)
		return
	}
	inRegion := func(x, y int) bool { return x >= 0 && x < b.W && y >= 0 && y < b.H }
	occupied := map[[2]int]int{}
	for i := range b.Cells {
		cw := &b.Cells[i]
		pos := cellPos(b.Name, i, cw.X, cw.Y)
		if !inRegion(cw.X, cw.Y) {
			r.Errorf(pos, "cell write outside the claimed %dx%d region", b.W, b.H)
			continue
		}
		if prev, dup := occupied[[2]int{cw.X, cw.Y}]; dup {
			r.Errorf(pos, "multiply-driven cell: already written by cell %d", prev)
		} else {
			occupied[[2]int{cw.X, cw.Y}] = i
		}
		for k, s := range cw.Inputs {
			checkSrc(r, b, fmt.Sprintf("%s input %d", pos, k), s, inRegion)
		}
	}
	if len(b.OutDrivers) != b.NumOut {
		r.Errorf(b.Name+": outputs", "%d output drivers for %d output ports", len(b.OutDrivers), b.NumOut)
	}
	for o, s := range b.OutDrivers {
		opos := fmt.Sprintf("%s: output %d", b.Name, o)
		if s.Kind == bitstream.SrcNone {
			r.Errorf(opos, "output port has no driver")
			continue
		}
		checkSrc(r, b, opos, s, inRegion)
	}
	// Sources must reference configured cells, not just in-region holes:
	// a read from an unconfigured CLB evaluates to garbage after
	// relocation next to a neighbor.
	for i := range b.Cells {
		cw := &b.Cells[i]
		for k, s := range cw.Inputs {
			if s.Kind == bitstream.SrcRel && inRegion(s.DX, s.DY) {
				if _, ok := occupied[[2]int{s.DX, s.DY}]; !ok {
					r.Errorf(cellPos(b.Name, i, cw.X, cw.Y),
						"input %d reads unconfigured cell (%d,%d)", k, s.DX, s.DY)
				}
			}
		}
	}
	for o, s := range b.OutDrivers {
		if s.Kind == bitstream.SrcRel && inRegion(s.DX, s.DY) {
			if _, ok := occupied[[2]int{s.DX, s.DY}]; !ok {
				r.Errorf(fmt.Sprintf("%s: output %d", b.Name, o), "driven by unconfigured cell (%d,%d)", s.DX, s.DY)
			}
		}
	}
	if g := t.Geometry; g != nil {
		if b.W > g.Cols || b.H > g.Rows {
			r.Errorf(b.Name+": region", "%dx%d region exceeds device %v", b.W, b.H, *g)
		}
		if want := b.NumIn + b.NumOut; want > g.NumPins() {
			r.Errorf(b.Name+": ports", "%d ports can never bind to %d device pins without multiplexing", want, g.NumPins())
		}
	}
}

func checkSrc(r *Reporter, b *bitstream.Bitstream, pos string, s bitstream.Src, inRegion func(x, y int) bool) {
	switch s.Kind {
	case bitstream.SrcNone, bitstream.SrcConst0, bitstream.SrcConst1:
	case bitstream.SrcRel:
		if !inRegion(s.DX, s.DY) {
			r.Errorf(pos, "region-relative source (%d,%d) outside the claimed %dx%d region", s.DX, s.DY, b.W, b.H)
		}
	case bitstream.SrcPort:
		if s.Port < 0 || s.Port >= b.NumIn {
			r.Errorf(pos, "references input port %d of %d", s.Port, b.NumIn)
		}
	default:
		r.Errorf(pos, "unknown source kind %d", s.Kind)
	}
}

// passPageCoverage verifies the pagination invariant: the page set
// partitions the bitstream's cells exactly — every configured cell on
// exactly one page, no page writing cells the bitstream does not own,
// page indices dense and ordered, and no page exceeding the page size.
// A violation means demand paging would leave holes in (or scribble
// over) the configured region.
func passPageCoverage(t *Target, r *Reporter) {
	b := t.Bitstream
	if b == nil {
		return
	}
	pages := t.Pages
	if pages == nil {
		if t.PageCells <= 0 {
			return
		}
		pages = b.Pages(t.PageCells)
	}
	// Multiset of cells the bitstream owns, keyed by coordinate (bounds
	// duplicates are bitstream-bounds findings; coverage compares 1:1).
	want := map[[2]int]int{}
	for i := range b.Cells {
		want[[2]int{b.Cells[i].X, b.Cells[i].Y}]++
	}
	got := map[[2]int]int{}
	for pi, p := range pages {
		pos := fmt.Sprintf("%s: page %d", b.Name, pi)
		if p.Index != pi {
			r.Errorf(pos, "page index %d out of sequence (expected %d)", p.Index, pi)
		}
		if len(p.Cells) == 0 {
			r.Errorf(pos, "empty page")
		}
		if t.PageCells > 0 && len(p.Cells) > t.PageCells {
			r.Errorf(pos, "page holds %d cells, page size is %d", len(p.Cells), t.PageCells)
		}
		for i := range p.Cells {
			got[[2]int{p.Cells[i].X, p.Cells[i].Y}]++
		}
	}
	for xy, n := range got {
		w := want[xy]
		switch {
		case w == 0:
			r.Errorf(fmt.Sprintf("%s: pages", b.Name), "cell (%d,%d) paged in but not part of the bitstream", xy[0], xy[1])
		case n > w:
			r.Errorf(fmt.Sprintf("%s: pages", b.Name), "cell (%d,%d) covered by %d pages", xy[0], xy[1], n)
		}
	}
	missing := 0
	for xy, w := range want {
		if got[xy] < w {
			missing += w - got[xy]
			if missing <= 8 { // cap the spam on badly-torn page sets
				r.Errorf(fmt.Sprintf("%s: pages", b.Name), "cell (%d,%d) not covered by any page", xy[0], xy[1])
			}
		}
	}
	if missing > 8 {
		r.Errorf(fmt.Sprintf("%s: pages", b.Name), "%d further cells not covered by any page", missing-8)
	}
}
