// Package lint is the static verification subsystem: a multi-pass
// analyzer for the artifacts the VFPGA stack moves around — gate-level
// netlists, relocatable bitstreams, bitstream pages, partition-table
// snapshots and configured devices.
//
// Every virtualization technique in the paper rests on invariants that
// are otherwise only checked dynamically, if at all: partitions must
// stay disjoint and merge cleanly, a paged bitstream must never write
// outside its region, preemption requires the flip-flop state to be
// readback-observable. The passes here check those invariants offline,
// producing structured diagnostics instead of mid-simulation panics.
//
// Usage: fill a Target with whatever artifacts are at hand (nil fields
// are skipped), then Run it through the registered passes:
//
//	diags := lint.RunTarget(&lint.Target{Netlist: nl, Bitstream: bs}, lint.Options{})
//	if lint.HasErrors(diags) { ... }
package lint

import (
	"encoding/json"
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/netlist"
)

// Severity grades a diagnostic.
type Severity int

// Severity levels, in increasing order of badness.
const (
	Info    Severity = iota // observation; never fails a build
	Warning                 // suspicious but functional
	Error                   // invariant violation; artifact is broken
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON encodes the severity as its lowercase name, so -json
// output reads "error" rather than 2.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts the lowercase severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	v, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// ParseSeverity converts a name ("info", "warning", "error") to a
// Severity.
func ParseSeverity(name string) (Severity, error) {
	switch name {
	case "info":
		return Info, nil
	case "warning":
		return Warning, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("lint: unknown severity %q", name)
}

// Diagnostic is one finding of one pass.
type Diagnostic struct {
	Pass     string   `json:"pass"`
	Severity Severity `json:"severity"`
	// Pos locates the finding: "circuit:node 5", "bitstream:cell (3,2)",
	// "partitions:x=4+3", ...
	Pos string `json:"pos"`
	Msg string `json:"msg"`
}

// String renders "severity: pass: pos: msg".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s: %s", d.Severity, d.Pass, d.Pos, d.Msg)
}

// PartitionView is a lint-side snapshot of one partition-table row.
// core.PartitionManager exports its state in this shape (the lint
// package cannot import core without a cycle through compile).
type PartitionView struct {
	X, W    int
	Circuit string
	Free    bool
}

// RegionView is a lint-side snapshot of one amorphous region-map span:
// a column range, what circuit it holds, which task owns it ("" for a
// cached, unowned resident), and whether it is free.
// core.AmorphousManager exports its state in this shape.
type RegionView struct {
	X, W    int
	Circuit string
	Owner   string
	Free    bool
}

// Target bundles the artifacts one lint run inspects. Any field may be
// nil/empty; each pass checks only what is present.
type Target struct {
	// Name labels the target in diagnostics when no netlist or bitstream
	// supplies one (e.g. pure partition-state targets).
	Name string

	// Netlist is a gate-level circuit (the netlist-domain passes).
	Netlist *netlist.Netlist
	// Segments is an ordered stage chain produced by netlist.Segment;
	// when set, Netlist must be the original circuit, and the port-width
	// pass checks the boundary-wire interface between stages.
	Segments []*netlist.Netlist

	// Bitstream is a relocatable configuration image.
	Bitstream *bitstream.Bitstream
	// Geometry, when non-nil, bounds the bitstream against a device.
	Geometry *fabric.Geometry
	// PageCells, when > 0, makes the page-coverage pass split Bitstream
	// into pages of that size (unless Pages is given explicitly).
	PageCells int
	// Pages, when non-empty, is the page set to check against Bitstream.
	Pages []bitstream.Page

	// Partitions is a partition-table snapshot; Cols the device width it
	// must fit, and PartitionMode "fixed" or "variable".
	Partitions []PartitionView
	// Regions is an amorphous region-map snapshot (flexible-boundary
	// spans); Cols bounds it like Partitions.
	Regions []RegionView
	Cols    int
	// PartitionMode selects the coverage rule: "variable" partitions
	// must tile the device exactly; "fixed" tables may leave a tail.
	PartitionMode string

	// Device is a configured fabric to cross-check (dangling sources,
	// configuration-level combinational loops).
	Device *fabric.Device

	// FaultPlan is a fault-injection campaign description to validate
	// (probability ranges, script ordering, retry policy).
	FaultPlan *fault.Plan
}

// label returns the diagnostic prefix for netlist-domain findings.
func (t *Target) label() string {
	switch {
	case t.Netlist != nil:
		return t.Netlist.Name
	case t.Bitstream != nil:
		return t.Bitstream.Name
	case t.Name != "":
		return t.Name
	}
	return "target"
}

// Reporter collects diagnostics on behalf of one pass.
type Reporter struct {
	pass  string
	diags *[]Diagnostic
}

func (r *Reporter) report(sev Severity, pos, format string, args ...interface{}) {
	*r.diags = append(*r.diags, Diagnostic{
		Pass: r.pass, Severity: sev, Pos: pos, Msg: fmt.Sprintf(format, args...),
	})
}

// Errorf records an error-severity diagnostic.
func (r *Reporter) Errorf(pos, format string, args ...interface{}) {
	r.report(Error, pos, format, args...)
}

// Warnf records a warning-severity diagnostic.
func (r *Reporter) Warnf(pos, format string, args ...interface{}) {
	r.report(Warning, pos, format, args...)
}

// Infof records an info-severity diagnostic.
func (r *Reporter) Infof(pos, format string, args ...interface{}) {
	r.report(Info, pos, format, args...)
}

// Pass is one named analysis over a Target.
type Pass struct {
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	Run func(t *Target, r *Reporter)
}

// builtin is the ordered default pass set.
var builtin = []Pass{
	{"comb-loop", "combinational cycles in the gate graph", passCombLoop},
	{"net-drive", "dangling nets, unused inputs, multiply-driven ports, structural damage", passNetDrive},
	{"port-width", "bus contiguity and Segment/Concat boundary-wire interfaces", passPortWidth},
	{"dead-logic", "gates that cannot influence any primary output", passDeadLogic},
	{"seq-preempt", "flip-flop state that is not fully readback-observable", passSeqPreempt},
	{"bitstream-bounds", "cell writes, sources and pin bindings inside the claimed region", passBitstreamBounds},
	{"page-coverage", "pages partition the bitstream's cells exactly once", passPageCoverage},
	{"partition-state", "disjoint, merged, non-leaking partition tables", passPartitionState},
	{"region-state", "amorphous region maps: exact tiling, no shared columns, coalesced free spans", passRegionState},
	{"fabric-config", "configured devices: dangling sources, config-level loops", passFabricConfig},
	{"fault-plan", "fault campaign sanity: probability ranges, script ordering, retry policy", passFaultPlan},
}

// extra holds passes added by RegisterPass, run after the builtins.
var extra []Pass

// RegisterPass adds a custom pass to every subsequent Run. It panics on
// a name collision with an existing pass.
func RegisterPass(p Pass) {
	for _, q := range Passes() {
		if q.Name == p.Name {
			panic(fmt.Sprintf("lint: duplicate pass %q", p.Name))
		}
	}
	extra = append(extra, p)
}

// Passes returns the full ordered pass list (builtins, then registered).
func Passes() []Pass {
	out := make([]Pass, 0, len(builtin)+len(extra))
	out = append(out, builtin...)
	out = append(out, extra...)
	return out
}

// Options tunes a lint run.
type Options struct {
	// Passes restricts the run to the named passes; empty runs all.
	Passes []string
	// MinSeverity drops diagnostics below the given level.
	MinSeverity Severity
}

func (o Options) selected() ([]Pass, error) {
	all := Passes()
	if len(o.Passes) == 0 {
		return all, nil
	}
	byName := map[string]Pass{}
	for _, p := range all {
		byName[p.Name] = p
	}
	var out []Pass
	for _, name := range o.Passes {
		p, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown pass %q", name)
		}
		out = append(out, p)
	}
	return out, nil
}

// Run lints every target through the selected passes and returns the
// combined diagnostics in pass-then-target order.
func Run(targets []*Target, opts Options) ([]Diagnostic, error) {
	sel, err := opts.selected()
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, t := range targets {
		for _, p := range sel {
			r := &Reporter{pass: p.Name, diags: &diags}
			p.Run(t, r)
		}
	}
	if opts.MinSeverity > Info {
		kept := diags[:0]
		for _, d := range diags {
			if d.Severity >= opts.MinSeverity {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	return diags, nil
}

// RunTarget lints a single target. Unknown pass names panic (they are a
// programming error at this call depth).
func RunTarget(t *Target, opts Options) []Diagnostic {
	diags, err := Run([]*Target{t}, opts)
	if err != nil {
		panic(err)
	}
	return diags
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity >= Error {
			return true
		}
	}
	return false
}

// Errors returns only the error-severity diagnostics.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity >= Error {
			out = append(out, d)
		}
	}
	return out
}

// Count returns the number of diagnostics at exactly the given severity.
func Count(diags []Diagnostic, sev Severity) int {
	n := 0
	for _, d := range diags {
		if d.Severity == sev {
			n++
		}
	}
	return n
}
