package lint

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
)

// passPartitionState audits a partition-table snapshot against the §4
// invariants: every strip inside the device, strips pairwise disjoint,
// no columns leaked (variable mode must tile the device exactly — free
// space is represented, never dropped), adjacent free strips merged
// after release/garbage collection, and freed strips carrying no stale
// circuit claim. Fragmentation and overlap bugs are the dominant
// failure mode of virtual areas, so this pass is the one to run after
// every Remove/compact in stress tests.
func passPartitionState(t *Target, r *Reporter) {
	if len(t.Partitions) == 0 {
		return
	}
	name := t.Name
	if name == "" {
		name = "partitions"
	}
	views := append([]PartitionView(nil), t.Partitions...)
	sort.Slice(views, func(i, j int) bool { return views[i].X < views[j].X })
	ppos := func(v PartitionView) string {
		return fmt.Sprintf("%s: strip x=%d w=%d", name, v.X, v.W)
	}
	for _, v := range views {
		if v.W <= 0 {
			r.Errorf(ppos(v), "non-positive width")
		}
		if v.X < 0 {
			r.Errorf(ppos(v), "negative origin")
		}
		if t.Cols > 0 && v.X+v.W > t.Cols {
			r.Errorf(ppos(v), "extends past the device's %d columns", t.Cols)
		}
		if v.Free && v.Circuit != "" {
			r.Errorf(ppos(v), "free strip still claims circuit %q", v.Circuit)
		}
	}
	variable := t.PartitionMode == "variable"
	at := 0
	for i, v := range views {
		if v.X < at {
			r.Errorf(ppos(v), "overlaps the previous strip by %d column(s)", at-v.X)
		} else if v.X > at {
			if variable {
				r.Errorf(ppos(v), "columns %d..%d leaked: not covered by any strip", at, v.X-1)
			} else if i > 0 {
				// Fixed tables are carved contiguously from x=0; only the
				// tail beyond the configured widths may be uncovered.
				r.Errorf(ppos(v), "gap of %d column(s) inside a fixed partition table", v.X-at)
			}
		}
		if v.X+v.W > at {
			at = v.X + v.W
		}
		if i > 0 && v.Free && views[i-1].Free && views[i-1].X+views[i-1].W == v.X {
			r.Errorf(ppos(v), "adjacent free strips not merged (previous ends at %d)", v.X)
		}
	}
	if variable && t.Cols > 0 && at < t.Cols {
		r.Errorf(fmt.Sprintf("%s: table", name), "columns %d..%d leaked: variable mode must tile the device", at, t.Cols-1)
	}
}

// passRegionState audits an amorphous region-map snapshot against the
// flexible-boundary invariants: every span inside the device, no two
// owners sharing a column (spans pairwise disjoint), the device tiled
// exactly (free space is explicit, never dropped — a sliding map has no
// unusable tail), free spans sorted and coalesced, free spans carrying
// no stale circuit or owner claim, and occupied spans naming a circuit.
func passRegionState(t *Target, r *Reporter) {
	if len(t.Regions) == 0 {
		return
	}
	name := t.Name
	if name == "" {
		name = "regions"
	}
	views := append([]RegionView(nil), t.Regions...)
	sort.Slice(views, func(i, j int) bool { return views[i].X < views[j].X })
	rpos := func(v RegionView) string {
		return fmt.Sprintf("%s: span x=%d w=%d", name, v.X, v.W)
	}
	for _, v := range views {
		if v.W <= 0 {
			r.Errorf(rpos(v), "non-positive width")
		}
		if v.X < 0 {
			r.Errorf(rpos(v), "negative origin")
		}
		if t.Cols > 0 && v.X+v.W > t.Cols {
			r.Errorf(rpos(v), "extends past the device's %d columns", t.Cols)
		}
		if v.Free {
			if v.Circuit != "" {
				r.Errorf(rpos(v), "free span still claims circuit %q", v.Circuit)
			}
			if v.Owner != "" {
				r.Errorf(rpos(v), "free span still claims owner %q", v.Owner)
			}
		} else if v.Circuit == "" {
			r.Errorf(rpos(v), "occupied span names no circuit")
		}
	}
	at := 0
	for i, v := range views {
		if v.X < at {
			r.Errorf(rpos(v), "overlaps the previous span by %d column(s): two regions share a column", at-v.X)
		} else if v.X > at {
			r.Errorf(rpos(v), "columns %d..%d leaked: not covered by any span", at, v.X-1)
		}
		if v.X+v.W > at {
			at = v.X + v.W
		}
		if i > 0 && v.Free && views[i-1].Free && views[i-1].X+views[i-1].W == v.X {
			r.Errorf(rpos(v), "adjacent free spans not coalesced (previous ends at %d)", v.X)
		}
	}
	if t.Cols > 0 && at < t.Cols {
		r.Errorf(fmt.Sprintf("%s: map", name), "columns %d..%d leaked: the region map must tile the device", at, t.Cols-1)
	}
}

// passFabricConfig cross-checks a configured device the way the
// functional evaluator would consume it: every used CLB input and every
// output-pin driver must reference a used CLB, a configured input pin
// or a constant — and the configured logic must be acyclic. Dangling
// sources read unconfigured fabric (garbage after a neighbor unloads);
// configuration-level loops would hang evaluation at run time.
func passFabricConfig(t *Target, r *Reporter) {
	d := t.Device
	if d == nil {
		return
	}
	g := d.Geometry()
	name := t.Name
	if name == "" {
		name = "device"
	}
	used := map[[2]int]bool{}
	d.EachUsedCLB(func(x, y int, cfg fabric.CLBConfig) {
		used[[2]int{x, y}] = true
	})
	checkSource := func(pos string, s fabric.Source) {
		switch s.Kind {
		case fabric.SrcUnused, fabric.SrcConst0, fabric.SrcConst1:
		case fabric.SrcCLB:
			if s.X < 0 || s.X >= g.Cols || s.Y < 0 || s.Y >= g.Rows {
				r.Errorf(pos, "reads CLB (%d,%d) outside device %v", s.X, s.Y, g)
			} else if !used[[2]int{s.X, s.Y}] {
				r.Errorf(pos, "reads unconfigured CLB (%d,%d)", s.X, s.Y)
			}
		case fabric.SrcPin:
			if s.Pin < 0 || s.Pin >= g.NumPins() {
				r.Errorf(pos, "reads pin %d outside device %v", s.Pin, g)
			} else if d.Pin(s.Pin).Mode != fabric.PinInput {
				r.Errorf(pos, "reads pin %d which is not configured as an input", s.Pin)
			}
		default:
			r.Errorf(pos, "unknown source kind %d", s.Kind)
		}
	}
	d.EachUsedCLB(func(x, y int, cfg fabric.CLBConfig) {
		for k, s := range cfg.Inputs {
			checkSource(fmt.Sprintf("%s: CLB (%d,%d) input %d", name, x, y, k), s)
		}
	})
	for p := 0; p < g.NumPins(); p++ {
		cfg := d.Pin(p)
		if cfg.Mode == fabric.PinOutput {
			checkSource(fmt.Sprintf("%s: output pin %d", name, p), cfg.Driver)
		}
	}
	// Configuration-level combinational loop check (registered CLBs break
	// cycles: their output is the FF, not the LUT).
	type xy = [2]int
	indeg := map[xy]int{}
	succ := map[xy][]xy{}
	d.EachUsedCLB(func(x, y int, cfg fabric.CLBConfig) {
		me := xy{x, y}
		if _, ok := indeg[me]; !ok {
			indeg[me] = 0
		}
		for _, s := range cfg.Inputs {
			if s.Kind != fabric.SrcCLB || !used[xy{s.X, s.Y}] {
				continue
			}
			src := d.CLB(s.X, s.Y)
			if src.UseFF {
				continue // sequential edge
			}
			indeg[me]++
			succ[xy{s.X, s.Y}] = append(succ[xy{s.X, s.Y}], me)
		}
	})
	var queue []xy
	for c, n := range indeg {
		if n == 0 {
			queue = append(queue, c)
		}
	}
	sort.Slice(queue, func(i, j int) bool {
		return queue[i][0] < queue[j][0] || (queue[i][0] == queue[j][0] && queue[i][1] < queue[j][1])
	})
	ordered := 0
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		ordered++
		for _, s := range succ[c] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if ordered != len(indeg) {
		r.Errorf(name+": logic", "configured fabric contains a combinational loop (%d of %d CLBs unordered)",
			len(indeg)-ordered, len(indeg))
	}
}
