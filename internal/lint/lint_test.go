package lint

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/rng"
)

// raw assembles a Netlist directly, bypassing Builder.Build — exactly
// what a deserialized or corrupted artifact looks like to the verifier.
func raw(name string, nodes []netlist.Node, in, out, dffs []netlist.NodeID) *netlist.Netlist {
	return &netlist.Netlist{Name: name, Nodes: nodes, Inputs: in, Outputs: out, DFFs: dffs}
}

func node(id int, kind netlist.Kind, name string, fanin ...netlist.NodeID) netlist.Node {
	return netlist.Node{ID: netlist.NodeID(id), Kind: kind, Name: name, Fanin: fanin}
}

// only runs a single pass over a single target.
func only(t *testing.T, pass string, target *Target) []Diagnostic {
	t.Helper()
	diags, err := Run([]*Target{target}, Options{Passes: []string{pass}})
	if err != nil {
		t.Fatalf("Run(%s): %v", pass, err)
	}
	return diags
}

func wantDiag(t *testing.T, diags []Diagnostic, sev Severity, msgFragment string) {
	t.Helper()
	for _, d := range diags {
		if d.Severity == sev && strings.Contains(d.Msg, msgFragment) {
			return
		}
	}
	t.Fatalf("no %v diagnostic containing %q in %v", sev, msgFragment, diags)
}

func wantNone(t *testing.T, diags []Diagnostic) {
	t.Helper()
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics, got %v", diags)
	}
}

func TestCombLoopDetected(t *testing.T) {
	// a -> not(1) -> not(2) -> back to not(1); output reads node 2.
	nl := raw("looped", []netlist.Node{
		node(0, netlist.KindInput, "a"),
		node(1, netlist.KindNot, "", 2),
		node(2, netlist.KindNot, "", 1),
		node(3, netlist.KindOutput, "y", 2),
	}, []netlist.NodeID{0}, []netlist.NodeID{3}, nil)
	diags := only(t, "comb-loop", &Target{Netlist: nl})
	wantDiag(t, diags, Error, "combinational loop")
}

func TestCombLoopCleanOnDFFFeedback(t *testing.T) {
	// The same feedback through a DFF is sequential, not combinational.
	nl := raw("dffloop", []netlist.Node{
		node(0, netlist.KindDFF, "", 1),
		node(1, netlist.KindNot, "", 0),
		node(2, netlist.KindOutput, "y", 0),
	}, nil, []netlist.NodeID{2}, []netlist.NodeID{0})
	wantNone(t, only(t, "comb-loop", &Target{Netlist: nl}))
}

func TestNetDriveDanglingAndUnused(t *testing.T) {
	nl := raw("dangle", []netlist.Node{
		node(0, netlist.KindInput, "a"),
		node(1, netlist.KindInput, "b"), // never read
		node(2, netlist.KindNot, "", 0), // never consumed
		node(3, netlist.KindOutput, "y", 0),
	}, []netlist.NodeID{0, 1}, []netlist.NodeID{3}, nil)
	diags := only(t, "net-drive", &Target{Netlist: nl})
	wantDiag(t, diags, Warning, "unused input port")
	wantDiag(t, diags, Warning, "dangling net")
}

func TestNetDriveMultiplyDrivenPort(t *testing.T) {
	nl := raw("dup", []netlist.Node{
		node(0, netlist.KindInput, "a"),
		node(1, netlist.KindInput, "a"), // same net name, second driver
		node(2, netlist.KindOutput, "y", 0),
	}, []netlist.NodeID{0, 1}, []netlist.NodeID{2}, nil)
	diags := only(t, "net-drive", &Target{Netlist: nl})
	wantDiag(t, diags, Error, "multiply-driven net")
}

func TestNetDriveStructuralDamage(t *testing.T) {
	nl := raw("damaged", []netlist.Node{
		node(0, netlist.KindInput, "a"),
		node(1, netlist.KindAnd, "", 0, 9), // fanin 9 out of range
		node(2, netlist.KindNot, ""),       // arity 1, zero fanins
		node(3, netlist.KindOutput, "y", 1),
	}, []netlist.NodeID{0}, []netlist.NodeID{3}, nil)
	diags := only(t, "net-drive", &Target{Netlist: nl})
	wantDiag(t, diags, Error, "outside the node table")
	wantDiag(t, diags, Error, "want 1")
}

func TestPortWidthMismatch(t *testing.T) {
	nl := raw("bus", []netlist.Node{
		node(0, netlist.KindInput, "d[0]"),
		node(1, netlist.KindInput, "d[2]"), // d[1] missing
		node(2, netlist.KindOutput, "q[0]", 0),
		node(3, netlist.KindOutput, "q[1]", 1),
		node(4, netlist.KindOutput, "q[1]", 0), // duplicate bit
		node(5, netlist.KindOutput, "q", 1),    // scalar aliases the bus
	}, []netlist.NodeID{0, 1}, []netlist.NodeID{2, 3, 4, 5}, nil)
	diags := only(t, "port-width", &Target{Netlist: nl})
	wantDiag(t, diags, Error, "bit(s) 1 missing")
	wantDiag(t, diags, Error, "declared 2 times")
	wantDiag(t, diags, Error, "aliases bus bits")
}

func TestPortWidthSegmentChain(t *testing.T) {
	orig := netlist.Adder(8)
	stages, err := netlist.Segment(orig, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantNone(t, only(t, "port-width", &Target{Netlist: orig, Segments: stages}))

	// Drop the first stage: later stages now import wires nobody makes.
	broken := only(t, "port-width", &Target{Netlist: orig, Segments: stages[1:]})
	wantDiag(t, broken, Error, "no earlier stage exports")
}

func TestDeadLogicDetected(t *testing.T) {
	nl := raw("dead", []netlist.Node{
		node(0, netlist.KindInput, "a"),
		node(1, netlist.KindNot, "", 0), // feeds node 2 only
		node(2, netlist.KindNot, "", 1), // consumed by nothing
		node(3, netlist.KindOutput, "y", 0),
	}, []netlist.NodeID{0}, []netlist.NodeID{3}, nil)
	diags := only(t, "dead-logic", &Target{Netlist: nl})
	wantDiag(t, diags, Warning, "dead logic")
	if len(diags) != 2 {
		t.Fatalf("want exactly nodes 1 and 2 flagged, got %v", diags)
	}
}

func TestSeqPreemptUnobservableState(t *testing.T) {
	// A DFF chain that never reaches an output: dead, unobservable state.
	nl := raw("hidden", []netlist.Node{
		node(0, netlist.KindInput, "d"),
		node(1, netlist.KindDFF, "", 0),
		node(2, netlist.KindOutput, "y", 0), // output bypasses the DFF
	}, []netlist.NodeID{0}, []netlist.NodeID{2}, []netlist.NodeID{1})
	diags := only(t, "seq-preempt", &Target{Netlist: nl})
	wantDiag(t, diags, Warning, "not observable")
	wantDiag(t, diags, Warning, "not fully preemptable")
}

func TestSeqPreemptBitstreamStateVolume(t *testing.T) {
	bs := &bitstream.Bitstream{
		Name: "b", W: 2, H: 1, NumIn: 1, NumOut: 1,
		Cells: []bitstream.CellWrite{
			{X: 0, Y: 0, UseFF: true, Inputs: [fabric.LUTInputs]bitstream.Src{{Kind: bitstream.SrcPort, Port: 0}}},
		},
		OutDrivers: []bitstream.Src{{Kind: bitstream.SrcRel, DX: 0, DY: 0}},
		FFCells:    2, // lies: only one registered cell
	}
	diags := only(t, "seq-preempt", &Target{Bitstream: bs})
	wantDiag(t, diags, Error, "readback/restore vectors will mismatch")

	// A sequential netlist whose bitstream carries no state at all.
	nl := raw("seq", []netlist.Node{
		node(0, netlist.KindDFF, "", 0),
		node(1, netlist.KindOutput, "y", 0),
	}, nil, []netlist.NodeID{1}, []netlist.NodeID{0})
	bs2 := &bitstream.Bitstream{
		Name: "b2", W: 1, H: 1, NumIn: 0, NumOut: 1,
		Cells:      []bitstream.CellWrite{{X: 0, Y: 0}},
		OutDrivers: []bitstream.Src{{Kind: bitstream.SrcRel}},
	}
	diags = only(t, "seq-preempt", &Target{Netlist: nl, Bitstream: bs2})
	wantDiag(t, diags, Error, "state cannot be read back")
}

func brokenBitstream() *bitstream.Bitstream {
	return &bitstream.Bitstream{
		Name: "bad", W: 2, H: 2, NumIn: 1, NumOut: 2,
		Cells: []bitstream.CellWrite{
			{X: 0, Y: 0, Inputs: [fabric.LUTInputs]bitstream.Src{
				{Kind: bitstream.SrcRel, DX: 5, DY: 0}, // source outside region
				{Kind: bitstream.SrcPort, Port: 3},     // port out of range
				{Kind: bitstream.SrcRel, DX: 1, DY: 1}, // in region but unconfigured
			}},
			{X: 3, Y: 0}, // cell write outside the region
			{X: 0, Y: 0}, // multiply-driven cell
		},
		OutDrivers: []bitstream.Src{{Kind: bitstream.SrcRel, DX: 0, DY: 0}}, // 1 driver for 2 ports
	}
}

func TestBitstreamBounds(t *testing.T) {
	diags := only(t, "bitstream-bounds", &Target{Bitstream: brokenBitstream()})
	wantDiag(t, diags, Error, "cell write outside the claimed 2x2 region")
	wantDiag(t, diags, Error, "multiply-driven cell")
	wantDiag(t, diags, Error, "region-relative source (5,0) outside")
	wantDiag(t, diags, Error, "references input port 3 of 1")
	wantDiag(t, diags, Error, "reads unconfigured cell (1,1)")
	wantDiag(t, diags, Error, "1 output drivers for 2 output ports")
}

func TestBitstreamBoundsDeviceExtents(t *testing.T) {
	bs := &bitstream.Bitstream{
		Name: "wide", W: 10, H: 2, NumIn: 0, NumOut: 0,
		Cells: []bitstream.CellWrite{{X: 0, Y: 0}},
	}
	g := fabric.Geometry{Cols: 4, Rows: 4, TracksPerChannel: 4, PinsPerSide: 2}
	diags := only(t, "bitstream-bounds", &Target{Bitstream: bs, Geometry: &g})
	wantDiag(t, diags, Error, "exceeds device")
}

func TestPageCoverage(t *testing.T) {
	bs := &bitstream.Bitstream{
		Name: "paged", W: 2, H: 2, NumOut: 0,
		Cells: []bitstream.CellWrite{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}},
	}
	// The derived page set is clean by construction.
	wantNone(t, only(t, "page-coverage", &Target{Bitstream: bs, PageCells: 2}))

	// A torn page set: cell (0,1) missing, cell (0,0) duplicated, a page
	// over its size, a misnumbered page.
	pages := []bitstream.Page{
		{Index: 0, Cells: []bitstream.CellWrite{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 0}}},
		{Index: 5, Cells: []bitstream.CellWrite{{X: 1, Y: 1}}},
	}
	diags := only(t, "page-coverage", &Target{Bitstream: bs, PageCells: 2, Pages: pages})
	wantDiag(t, diags, Error, "not covered by any page")
	wantDiag(t, diags, Error, "covered by 2 pages")
	wantDiag(t, diags, Error, "page holds 3 cells, page size is 2")
	wantDiag(t, diags, Error, "out of sequence")
	wantDiag(t, diags, Error, "paged in but not part of the bitstream")
}

func TestPartitionStateInvariants(t *testing.T) {
	clean := &Target{
		Name: "pt", Cols: 10, PartitionMode: "variable",
		Partitions: []PartitionView{
			{X: 0, W: 4, Circuit: "a"},
			{X: 4, W: 6, Free: true},
		},
	}
	wantNone(t, only(t, "partition-state", clean))

	broken := &Target{
		Name: "pt", Cols: 10, PartitionMode: "variable",
		Partitions: []PartitionView{
			{X: 0, W: 4, Circuit: "a"},
			{X: 3, W: 2, Circuit: "b"},             // overlaps a
			{X: 6, W: 2, Free: true, Circuit: "c"}, // freed but still claims c; gap 5..5 leaked
			{X: 8, W: 2, Free: true},               // adjacent free strips unmerged
		},
	}
	diags := only(t, "partition-state", broken)
	wantDiag(t, diags, Error, "overlaps the previous strip")
	wantDiag(t, diags, Error, "leaked")
	wantDiag(t, diags, Error, "still claims circuit")
	wantDiag(t, diags, Error, "not merged")
}

func TestRegionStateInvariants(t *testing.T) {
	clean := &Target{
		Name: "rm", Cols: 12,
		Regions: []RegionView{
			{X: 0, W: 4, Circuit: "a", Owner: "t1"},
			{X: 4, W: 3, Circuit: "b"}, // cached resident: circuit, no owner
			{X: 7, W: 5, Free: true},
		},
	}
	wantNone(t, only(t, "region-state", clean))

	broken := &Target{
		Name: "rm", Cols: 12,
		Regions: []RegionView{
			{X: 0, W: 4, Circuit: "a", Owner: "t1"},
			{X: 3, W: 2, Circuit: "b", Owner: "t2"}, // shares column 3 with a
			{X: 6, W: 2, Free: true, Owner: "t3"},   // free but owned; gap 5..5 leaked
			{X: 8, W: 2, Free: true},                // adjacent free spans uncoalesced
			{X: 10, W: 2},                           // occupied, no circuit
		},
	}
	diags := only(t, "region-state", broken)
	wantDiag(t, diags, Error, "two regions share a column")
	wantDiag(t, diags, Error, "leaked")
	wantDiag(t, diags, Error, "still claims owner")
	wantDiag(t, diags, Error, "not coalesced")
	wantDiag(t, diags, Error, "names no circuit")
}

func TestRegionStateMustTileDevice(t *testing.T) {
	short := &Target{
		Name: "rm", Cols: 12,
		Regions: []RegionView{
			{X: 0, W: 4, Circuit: "a"},
			// columns 4..11 never accounted for: a sliding map has no tail.
		},
	}
	diags := only(t, "region-state", short)
	wantDiag(t, diags, Error, "must tile the device")
}

func TestPartitionStateFixedModeAllowsTail(t *testing.T) {
	fixed := &Target{
		Name: "pt", Cols: 10, PartitionMode: "fixed",
		Partitions: []PartitionView{
			{X: 0, W: 4, Free: true},
			{X: 4, W: 4, Circuit: "a"},
			// columns 8..9 are the uncovered tail of the fixed table: fine.
		},
	}
	wantNone(t, only(t, "partition-state", fixed))
}

func TestFabricConfig(t *testing.T) {
	g := fabric.Geometry{Cols: 4, Rows: 4, TracksPerChannel: 4, PinsPerSide: 2}
	d := fabric.NewDevice(g)
	// CLB (0,0) reads unconfigured CLB (2,2) and pin 1 (not an input).
	d.WriteCLB(0, 0, fabric.CLBConfig{Used: true, Inputs: [fabric.LUTInputs]fabric.Source{
		fabric.CLBSource(2, 2),
		fabric.PinSource(1),
	}})
	diags := only(t, "fabric-config", &Target{Device: d})
	wantDiag(t, diags, Error, "reads unconfigured CLB (2,2)")
	wantDiag(t, diags, Error, "not configured as an input")
}

func TestFabricConfigLoop(t *testing.T) {
	g := fabric.Geometry{Cols: 4, Rows: 4, TracksPerChannel: 4, PinsPerSide: 2}
	d := fabric.NewDevice(g)
	d.WriteCLB(0, 0, fabric.CLBConfig{Used: true, Inputs: [fabric.LUTInputs]fabric.Source{fabric.CLBSource(1, 0)}})
	d.WriteCLB(1, 0, fabric.CLBConfig{Used: true, Inputs: [fabric.LUTInputs]fabric.Source{fabric.CLBSource(0, 0)}})
	diags := only(t, "fabric-config", &Target{Device: d})
	wantDiag(t, diags, Error, "combinational loop")

	// Registering one of the two CLBs breaks the cycle.
	d.WriteCLB(1, 0, fabric.CLBConfig{Used: true, UseFF: true, Inputs: [fabric.LUTInputs]fabric.Source{fabric.CLBSource(0, 0)}})
	wantNone(t, only(t, "fabric-config", &Target{Device: d}))
}

func TestRunOptions(t *testing.T) {
	nl := raw("dangle", []netlist.Node{
		node(0, netlist.KindInput, "a"),
		node(1, netlist.KindNot, "", 0),
		node(2, netlist.KindOutput, "y", 0),
	}, []netlist.NodeID{0}, []netlist.NodeID{2}, nil)
	// MinSeverity filters the dangling-net warning out.
	diags, err := Run([]*Target{{Netlist: nl}}, Options{MinSeverity: Error})
	if err != nil {
		t.Fatal(err)
	}
	wantNone(t, diags)
	// Unknown pass names are an error, not a silent no-op.
	if _, err := Run([]*Target{{Netlist: nl}}, Options{Passes: []string{"no-such-pass"}}); err == nil {
		t.Fatal("unknown pass accepted")
	}
}

func TestDiagnosticJSON(t *testing.T) {
	d := Diagnostic{Pass: "comb-loop", Severity: Error, Pos: "x", Msg: "m"}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"severity":"error"`) {
		t.Fatalf("severity not encoded by name: %s", b)
	}
	var back Diagnostic
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Fatalf("round trip: %+v != %+v", back, d)
	}
}

// TestLibraryIsClean sweeps every registry builder through every
// netlist-domain pass: the seed circuit library must carry no
// error-severity findings (warnings — genuinely dead gates, unused
// ports — are reported but tolerated).
func TestLibraryIsClean(t *testing.T) {
	for name, gen := range netlist.Registry() {
		nl := gen()
		diags := RunTarget(&Target{Netlist: nl}, Options{})
		if errs := Errors(diags); len(errs) > 0 {
			t.Errorf("%s: %d lint error(s), first: %s", name, len(errs), errs[0])
		}
	}
}

// TestRandomNetlistsAreClean fuzzes the verifier with generator-valid
// circuits: anything Build accepted must lint error-free.
func TestRandomNetlistsAreClean(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		src := rng.New(seed)
		nl := netlist.Random(src, netlist.RandomConfig{})
		if errs := Errors(RunTarget(&Target{Netlist: nl}, Options{})); len(errs) > 0 {
			t.Errorf("seed %d (%s): %s", seed, nl.Name, errs[0])
		}
	}
}
