package techmap

import (
	"fmt"
	"sort"
)

// Simulator evaluates a Mapped design directly, giving a second reference
// model between the netlist simulator and the configured fabric: the
// compile tests check netlist == mapped == fabric behaviour.
type Simulator struct {
	m     *Mapped
	order []CellID // combinational evaluation order
	vals  []bool   // per-cell current output value
	luts  []bool   // per-cell pre-register LUT value
	ffs   []bool   // per-registered-cell state, indexed by CellID
}

// NewSimulator returns a Simulator with registers at their init values.
func NewSimulator(m *Mapped) (*Simulator, error) {
	s := &Simulator{
		m:    m,
		vals: make([]bool, len(m.Cells)),
		luts: make([]bool, len(m.Cells)),
		ffs:  make([]bool, len(m.Cells)),
	}
	if err := s.computeOrder(); err != nil {
		return nil, err
	}
	s.Reset()
	return s, nil
}

// Reset restores every register to its init value.
func (s *Simulator) Reset() {
	for i := range s.m.Cells {
		if s.m.Cells[i].UseFF {
			s.ffs[i] = s.m.Cells[i].FFInit
		}
	}
}

// State returns the register values in cell order.
func (s *Simulator) State() []bool {
	var st []bool
	for i := range s.m.Cells {
		if s.m.Cells[i].UseFF {
			st = append(st, s.ffs[i])
		}
	}
	return st
}

// SetState restores register values captured by State.
func (s *Simulator) SetState(st []bool) {
	k := 0
	for i := range s.m.Cells {
		if s.m.Cells[i].UseFF {
			if k >= len(st) {
				panic("techmap: SetState vector too short")
			}
			s.ffs[i] = st[k]
			k++
		}
	}
	if k != len(st) {
		panic("techmap: SetState vector too long")
	}
}

func (s *Simulator) computeOrder() error {
	n := len(s.m.Cells)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for i := range s.m.Cells {
		if s.m.Cells[i].UseFF {
			continue // registered cells are sources combinationally
		}
		for _, in := range s.m.Cells[i].Inputs {
			if in.Kind == SigCell && !s.m.Cells[in.Cell].UseFF {
				indeg[i]++
				succ[in.Cell] = append(succ[in.Cell], i)
			}
		}
	}
	var queue []int
	combCells := 0
	for i := 0; i < n; i++ {
		if s.m.Cells[i].UseFF {
			continue // sources; their LUTs are evaluated in a final pass
		}
		combCells++
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	sort.Ints(queue)
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		s.order = append(s.order, CellID(i))
		for _, j := range succ[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if len(s.order) != combCells {
		return fmt.Errorf("techmap: mapped design %q has a combinational cycle", s.m.Name)
	}
	return nil
}

func (s *Simulator) signalValue(sig Signal, inputs []bool) bool {
	switch sig.Kind {
	case SigConst:
		return sig.Const
	case SigInput:
		return inputs[sig.Input]
	case SigCell:
		return s.vals[sig.Cell]
	}
	panic("techmap: bad signal kind")
}

func (s *Simulator) propagate(inputs []bool) {
	if len(inputs) != s.m.NumInputs {
		panic(fmt.Sprintf("techmap: %d inputs supplied, want %d", len(inputs), s.m.NumInputs))
	}
	for i := range s.m.Cells {
		if s.m.Cells[i].UseFF {
			s.vals[i] = s.ffs[i]
		}
	}
	lutOf := func(c CellID) bool {
		cell := &s.m.Cells[c]
		idx := 0
		for k, in := range cell.Inputs {
			if s.signalValue(in, inputs) {
				idx |= 1 << uint(k)
			}
		}
		return cell.LUT[idx]
	}
	for _, c := range s.order {
		s.luts[c] = lutOf(c)
		s.vals[c] = s.luts[c]
	}
	// Registered cells' next-state LUTs read settled combinational values.
	for i := range s.m.Cells {
		if s.m.Cells[i].UseFF {
			s.luts[i] = lutOf(CellID(i))
		}
	}
}

func (s *Simulator) outputs(inputs []bool) []bool {
	out := make([]bool, len(s.m.Outputs))
	for i, sig := range s.m.Outputs {
		out[i] = s.signalValue(sig, inputs)
	}
	return out
}

// Eval evaluates combinationally (registers hold) and returns the outputs.
func (s *Simulator) Eval(inputs []bool) []bool {
	s.propagate(inputs)
	return s.outputs(inputs)
}

// Step performs one clock cycle and returns the pre-edge outputs.
func (s *Simulator) Step(inputs []bool) []bool {
	s.propagate(inputs)
	out := s.outputs(inputs)
	for i := range s.m.Cells {
		if s.m.Cells[i].UseFF {
			s.ffs[i] = s.luts[i]
		}
	}
	return out
}
