package techmap

import (
	"sort"
	"testing"

	"repro/internal/netlist"
	"repro/internal/rng"
)

// randInputs produces a deterministic random input vector.
func randInputs(src *rng.Source, n int) []bool {
	in := make([]bool, n)
	for i := range in {
		in[i] = src.Bool()
	}
	return in
}

// checkEquivalent drives the netlist simulator and the mapped simulator
// with the same stimulus and requires identical outputs. Sequential
// designs are stepped; combinational designs are evaluated.
func checkEquivalent(t *testing.T, nl *netlist.Netlist, cycles int, seed uint64) *Mapped {
	t.Helper()
	m, err := Map(nl)
	if err != nil {
		t.Fatalf("Map(%s): %v", nl.Name, err)
	}
	golden := netlist.NewSimulator(nl)
	mapped, err := NewSimulator(m)
	if err != nil {
		t.Fatalf("NewSimulator(%s): %v", nl.Name, err)
	}
	src := rng.New(seed)
	for c := 0; c < cycles; c++ {
		in := randInputs(src, nl.NumInputs())
		var want, got []bool
		if nl.IsSequential() {
			want = golden.Step(in)
			got = mapped.Step(in)
		} else {
			want = golden.Eval(in)
			got = mapped.Eval(in)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s cycle %d output %d (%s): mapped %v, want %v",
					nl.Name, c, i, nl.OutputNames()[i], got[i], want[i])
			}
		}
	}
	return m
}

func TestMapEquivalenceLibrary(t *testing.T) {
	names := make([]string, 0)
	reg := netlist.Registry()
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		name := name
		seed := uint64(i + 1)
		t.Run(name, func(t *testing.T) {
			checkEquivalent(t, reg[name](), 64, seed)
		})
	}
}

func TestMapReducesGateCount(t *testing.T) {
	// 4-LUT packing must use no more cells than source gates for any
	// realistically sized datapath (each LUT absorbs >= 1 gate).
	for _, nl := range []*netlist.Netlist{netlist.Adder(16), netlist.Multiplier(6), netlist.ALU(8)} {
		m, err := Map(nl)
		if err != nil {
			t.Fatal(err)
		}
		if m.NumCells() > nl.NumGates() {
			t.Fatalf("%s: %d cells > %d gates", nl.Name, m.NumCells(), nl.NumGates())
		}
		if m.NumCells() == 0 {
			t.Fatalf("%s mapped to zero cells", nl.Name)
		}
	}
}

func TestMapPacksAdderTightly(t *testing.T) {
	// A ripple-carry full adder bit is 5 gates; each maps into ~2 LUTs
	// (sum and carry are both 3-input functions). Expect <= 2.5 cells/bit.
	nl := netlist.Adder(16)
	m, err := Map(nl)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() > 40 {
		t.Fatalf("adder16 mapped to %d cells, want <= 40", m.NumCells())
	}
}

func TestFFPacking(t *testing.T) {
	// In a counter every DFF's D-cone is single-fanout XOR logic, so every
	// flip-flop should pack into a registered LUT cell: total cells should
	// be close to the FF count plus carry-chain cells.
	nl := netlist.Counter(8)
	m, err := Map(nl)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFFs() != 8 {
		t.Fatalf("counter8 mapped with %d FFs, want 8", m.NumFFs())
	}
	if m.NumCells() > 16 {
		t.Fatalf("counter8 mapped to %d cells, want <= 16 (FF packing broken?)", m.NumCells())
	}
}

func TestMappedDepthPositive(t *testing.T) {
	m, err := Map(netlist.Multiplier(4))
	if err != nil {
		t.Fatal(err)
	}
	if m.Depth <= 0 {
		t.Fatalf("depth = %d", m.Depth)
	}
	// A 4x4 array multiplier is deep: expect more than 3 LUT levels.
	if m.Depth < 3 {
		t.Fatalf("mul4 depth = %d suspiciously shallow", m.Depth)
	}
}

func TestConstantOutput(t *testing.T) {
	b := netlist.NewBuilder("const")
	b.Output("y", b.Const(true))
	b.Output("z", b.Const(false))
	nl := b.MustBuild()
	m, err := Map(nl)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 0 {
		t.Fatalf("constant outputs needed %d cells", m.NumCells())
	}
	s, err := NewSimulator(m)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Eval(nil)
	if !out[0] || out[1] {
		t.Fatalf("const outputs = %v", out)
	}
}

func TestPassThroughOutput(t *testing.T) {
	b := netlist.NewBuilder("wire")
	a := b.Input("a")
	b.Output("y", b.Buf(a))
	nl := b.MustBuild()
	m, err := Map(nl)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 0 {
		t.Fatalf("wire needed %d cells", m.NumCells())
	}
	s, _ := NewSimulator(m)
	if out := s.Eval([]bool{true}); !out[0] {
		t.Fatal("wire does not pass through")
	}
}

func TestConstFedDFF(t *testing.T) {
	b := netlist.NewBuilder("constdff")
	q := b.DFF(b.Const(true), false)
	b.Output("q", q)
	nl := b.MustBuild()
	m, err := Map(nl)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewSimulator(m)
	out := s.Step(nil) // reset value first
	if out[0] {
		t.Fatal("DFF did not start at reset value")
	}
	out = s.Step(nil)
	if !out[0] {
		t.Fatal("const-fed DFF did not latch constant")
	}
}

func TestMappedStateSaveRestore(t *testing.T) {
	nl := netlist.Counter(8)
	m, err := Map(nl)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewSimulator(m)
	for i := 0; i < 21; i++ {
		s.Step([]bool{true})
	}
	saved := s.State()
	for i := 0; i < 9; i++ {
		s.Step([]bool{true})
	}
	s.SetState(saved)
	got := netlist.BoolsToUint(s.Eval([]bool{false}))
	if got != 21 {
		t.Fatalf("restored counter = %d, want 21", got)
	}
}

func TestMappedStateVectorMatchesNetlistCount(t *testing.T) {
	for _, nl := range []*netlist.Netlist{netlist.Counter(8), netlist.LFSR(16, []int{15, 13, 12, 10}), netlist.Accumulator(8)} {
		m, err := Map(nl)
		if err != nil {
			t.Fatal(err)
		}
		s, _ := NewSimulator(m)
		if len(s.State()) != nl.NumDFFs() {
			t.Fatalf("%s: state vector %d, want %d", nl.Name, len(s.State()), nl.NumDFFs())
		}
	}
}

func TestSetStateWrongLengthPanics(t *testing.T) {
	m, _ := Map(netlist.Counter(4))
	s, _ := NewSimulator(m)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.SetState([]bool{true})
}

func TestMaxCellInputsIsFour(t *testing.T) {
	for name, gen := range netlist.Registry() {
		m, err := Map(gen())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, c := range m.Cells {
			if len(c.Inputs) > 4 {
				t.Fatalf("%s: cell %d has %d inputs", name, c.ID, len(c.Inputs))
			}
		}
	}
}

func TestMapDeterministic(t *testing.T) {
	a, err := Map(netlist.ALU(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Map(netlist.ALU(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCells() != b.NumCells() || a.Depth != b.Depth {
		t.Fatal("mapping is not deterministic")
	}
	for i := range a.Cells {
		if a.Cells[i].LUT != b.Cells[i].LUT || len(a.Cells[i].Inputs) != len(b.Cells[i].Inputs) {
			t.Fatalf("cell %d differs between runs", i)
		}
	}
}

func TestStringSummaries(t *testing.T) {
	m, _ := Map(netlist.Adder(8))
	if m.String() == "" {
		t.Fatal("empty summary")
	}
}

func BenchmarkMapMul8(b *testing.B) {
	nl := netlist.Multiplier(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(nl); err != nil {
			b.Fatal(err)
		}
	}
}
