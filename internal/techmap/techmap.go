// Package techmap lowers gate-level netlists onto the fabric's logic
// blocks: every combinational cone is packed into 4-input LUTs, and flip-
// flops are packed into the register of the CLB that computes their D
// input whenever that cone has no other fanout (the XC4000 CLB structure).
//
// The mapper is a single-cut-per-node greedy packer: it is not optimal,
// but it is deterministic, complete (any netlist maps), and produces the
// realistic CLB counts the virtualization experiments need.
package techmap

import (
	"fmt"

	"repro/internal/netlist"
)

// CellID identifies a mapped logic cell within one Mapped design.
type CellID int

// SignalKind enumerates the sources a mapped connection can have.
type SignalKind uint8

// Signal source kinds.
const (
	SigCell  SignalKind = iota // output of a mapped cell
	SigInput                   // primary input, by index
	SigConst                   // constant value
)

// Signal identifies a value in the mapped design.
type Signal struct {
	Kind  SignalKind
	Cell  CellID // when Kind == SigCell
	Input int    // when Kind == SigInput
	Const bool   // when Kind == SigConst
}

// Cell is one mapped logic block: a LUT over up to four input signals and
// an optional output register.
type Cell struct {
	ID     CellID
	LUT    [16]bool // truth table over Inputs, input i = bit i of the index
	Inputs []Signal // at most 4
	UseFF  bool
	FFInit bool
}

// Mapped is a technology-mapped design, ready for placement.
type Mapped struct {
	Name        string
	Cells       []Cell
	NumInputs   int
	Outputs     []Signal // one per primary output, in port order
	InputNames  []string
	OutputNames []string
	// Depth is the maximum number of LUTs on any combinational path.
	Depth int
}

// NumCells returns the CLB count of the mapped design — its area.
func (m *Mapped) NumCells() int { return len(m.Cells) }

// NumFFs returns the number of registered cells.
func (m *Mapped) NumFFs() int {
	n := 0
	for i := range m.Cells {
		if m.Cells[i].UseFF {
			n++
		}
	}
	return n
}

// String renders a one-line summary.
func (m *Mapped) String() string {
	return fmt.Sprintf("%s: %d cells (%d registered), %d in, %d out, lut-depth %d",
		m.Name, m.NumCells(), m.NumFFs(), m.NumInputs, len(m.Outputs), m.Depth)
}

// mapper carries the per-run state of one Map invocation.
type mapper struct {
	nl     *netlist.Netlist
	fanout []int                               // resolved fanout count per node
	cut    map[netlist.NodeID][]netlist.NodeID // chosen cut per gate node
	cellOf map[netlist.NodeID]CellID           // realized cell per root node
	out    *Mapped
}

// Map lowers nl onto 4-LUT cells. It returns an error if any node needs a
// cut wider than the LUT (cannot happen with the primitive set, whose
// maximum arity is 3) or the netlist is malformed.
func Map(nl *netlist.Netlist) (*Mapped, error) {
	m := &mapper{
		nl:     nl,
		cut:    make(map[netlist.NodeID][]netlist.NodeID),
		cellOf: make(map[netlist.NodeID]CellID),
		out: &Mapped{
			Name:        nl.Name,
			NumInputs:   nl.NumInputs(),
			InputNames:  nl.InputNames(),
			OutputNames: nl.OutputNames(),
		},
	}
	m.countFanouts()
	m.chooseCuts()
	if err := m.realize(); err != nil {
		return nil, err
	}
	m.out.Depth = m.lutDepth()
	return m.out, nil
}

// resolve follows Buf and Output nodes to the node that actually produces
// the value.
func (m *mapper) resolve(id netlist.NodeID) netlist.NodeID {
	for {
		nd := m.nl.Node(id)
		if nd.Kind == netlist.KindBuf || nd.Kind == netlist.KindOutput {
			id = nd.Fanin[0]
			continue
		}
		return id
	}
}

// isGate reports whether the node is combinational logic (mappable into a
// LUT cone).
func (m *mapper) isGate(id netlist.NodeID) bool {
	switch m.nl.Node(id).Kind {
	case netlist.KindInput, netlist.KindOutput, netlist.KindConst,
		netlist.KindBuf, netlist.KindDFF:
		return false
	}
	return true
}

// countFanouts counts, per node, the number of distinct logical consumers
// after resolving bufs: gate fanins, DFF D inputs, and primary outputs.
func (m *mapper) countFanouts() {
	m.fanout = make([]int, len(m.nl.Nodes))
	for i := range m.nl.Nodes {
		nd := m.nl.Node(netlist.NodeID(i))
		switch nd.Kind {
		case netlist.KindBuf:
			continue // transparent; its consumer counts against the source
		case netlist.KindOutput, netlist.KindDFF:
			m.fanout[m.resolve(nd.Fanin[0])]++
		default:
			for _, f := range nd.Fanin {
				m.fanout[m.resolve(f)]++
			}
		}
	}
}

// leafSet merges cut leaves, dropping constants (they consume no LUT
// input: the truth table folds them).
func (m *mapper) addLeaves(dst []netlist.NodeID, leaves []netlist.NodeID) []netlist.NodeID {
	for _, l := range leaves {
		if m.nl.Node(l).Kind == netlist.KindConst {
			continue
		}
		dup := false
		for _, d := range dst {
			if d == l {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, l)
		}
	}
	return dst
}

// expandOf returns the leaves contributed by fanin f when expanded (its
// own cut, if it is a gate) or not (itself).
func (m *mapper) expandOf(f netlist.NodeID, expand bool) []netlist.NodeID {
	if expand && m.isGate(f) {
		return m.cut[f]
	}
	return []netlist.NodeID{f}
}

// chooseCuts picks, for every gate in topological order, a set of at most
// four leaf nodes from which its value is computable. Expanding a fanin
// absorbs that gate into this LUT; we prefer to absorb single-fanout gates
// (saving a cell) and then to minimize leaf count.
func (m *mapper) chooseCuts() {
	for _, id := range m.nl.TopoOrder() {
		if !m.isGate(id) {
			continue
		}
		nd := m.nl.Node(id)
		fanins := make([]netlist.NodeID, len(nd.Fanin))
		for i, f := range nd.Fanin {
			fanins[i] = m.resolve(f)
		}
		nf := len(fanins)
		bestScore := -1
		var best []netlist.NodeID
		for mask := (1 << uint(nf)) - 1; mask >= 0; mask-- {
			var leaves []netlist.NodeID
			absorbed := 0
			for i, f := range fanins {
				expand := mask&(1<<uint(i)) != 0 && m.isGate(f)
				leaves = m.addLeaves(leaves, m.expandOf(f, expand))
				if expand {
					absorbed++
				}
			}
			if len(leaves) > 4 {
				continue
			}
			// Score: absorbing gate fanins is free (a gate only costs a
			// cell if some chosen cut keeps it as a leaf), so prefer the
			// deepest cut; among those, fewer leaves helps downstream.
			score := absorbed*16 + (4 - len(leaves))
			if score > bestScore {
				bestScore = score
				best = leaves
			}
		}
		if best == nil {
			// Fall back to the fanins themselves (arity <= 3 < 4).
			best = m.addLeaves(nil, fanins)
		}
		m.cut[id] = best
	}
}

// coneEval evaluates node id under the given assignment of values to the
// cut leaves (and implicit constant folding).
func (m *mapper) coneEval(id netlist.NodeID, leafVal map[netlist.NodeID]bool) bool {
	id = m.resolve(id)
	if v, ok := leafVal[id]; ok {
		return v
	}
	nd := m.nl.Node(id)
	switch nd.Kind {
	case netlist.KindConst:
		return nd.Init
	case netlist.KindNot:
		return !m.coneEval(nd.Fanin[0], leafVal)
	case netlist.KindAnd:
		return m.coneEval(nd.Fanin[0], leafVal) && m.coneEval(nd.Fanin[1], leafVal)
	case netlist.KindOr:
		return m.coneEval(nd.Fanin[0], leafVal) || m.coneEval(nd.Fanin[1], leafVal)
	case netlist.KindXor:
		return m.coneEval(nd.Fanin[0], leafVal) != m.coneEval(nd.Fanin[1], leafVal)
	case netlist.KindNand:
		return !(m.coneEval(nd.Fanin[0], leafVal) && m.coneEval(nd.Fanin[1], leafVal))
	case netlist.KindNor:
		return !(m.coneEval(nd.Fanin[0], leafVal) || m.coneEval(nd.Fanin[1], leafVal))
	case netlist.KindMux:
		if m.coneEval(nd.Fanin[0], leafVal) {
			return m.coneEval(nd.Fanin[2], leafVal)
		}
		return m.coneEval(nd.Fanin[1], leafVal)
	}
	panic(fmt.Sprintf("techmap: cone evaluation reached %v node %d outside its cut", nd.Kind, id))
}

// signalFor returns (realizing if necessary) the mapped signal carrying
// the value of node id.
func (m *mapper) signalFor(id netlist.NodeID) (Signal, error) {
	id = m.resolve(id)
	nd := m.nl.Node(id)
	switch nd.Kind {
	case netlist.KindConst:
		return Signal{Kind: SigConst, Const: nd.Init}, nil
	case netlist.KindInput:
		for i, in := range m.nl.Inputs {
			if in == id {
				return Signal{Kind: SigInput, Input: i}, nil
			}
		}
		return Signal{}, fmt.Errorf("techmap: input node %d not in port list", id)
	case netlist.KindDFF:
		c, err := m.realizeDFF(id)
		if err != nil {
			return Signal{}, err
		}
		return Signal{Kind: SigCell, Cell: c}, nil
	default:
		c, err := m.realizeGate(id)
		if err != nil {
			return Signal{}, err
		}
		return Signal{Kind: SigCell, Cell: c}, nil
	}
}

// lutOver builds the truth table and input signals for the cone rooted at
// root with the given cut leaves.
func (m *mapper) lutOver(root netlist.NodeID, leaves []netlist.NodeID) (lut [16]bool, inputs []Signal, err error) {
	if len(leaves) > 4 {
		return lut, nil, fmt.Errorf("techmap: cut of %d leaves at node %d", len(leaves), root)
	}
	inputs = make([]Signal, len(leaves))
	for i, l := range leaves {
		inputs[i], err = m.signalFor(l)
		if err != nil {
			return lut, nil, err
		}
	}
	leafVal := make(map[netlist.NodeID]bool, len(leaves))
	for idx := 0; idx < 1<<uint(len(leaves)); idx++ {
		for i, l := range leaves {
			leafVal[l] = idx&(1<<uint(i)) != 0
		}
		lut[idx] = m.coneEval(root, leafVal)
	}
	// Replicate the function across unused high LUT address bits so the
	// table is well-defined for any 4-bit address.
	for idx := 1 << uint(len(leaves)); idx < 16; idx++ {
		lut[idx] = lut[idx&((1<<uint(len(leaves)))-1)]
	}
	return lut, inputs, nil
}

// realizeGate materializes the LUT cell for a gate root (memoized).
func (m *mapper) realizeGate(id netlist.NodeID) (CellID, error) {
	if c, ok := m.cellOf[id]; ok {
		return c, nil
	}
	lut, inputs, err := m.lutOver(id, m.cut[id])
	if err != nil {
		return 0, err
	}
	c := CellID(len(m.out.Cells))
	m.cellOf[id] = c
	m.out.Cells = append(m.out.Cells, Cell{ID: c, LUT: lut, Inputs: inputs})
	return c, nil
}

// realizeDFF materializes the registered cell for a flip-flop, packing its
// D-cone into the same cell when the cone has no other fanout.
func (m *mapper) realizeDFF(id netlist.NodeID) (CellID, error) {
	if c, ok := m.cellOf[id]; ok {
		return c, nil
	}
	nd := m.nl.Node(id)
	c := CellID(len(m.out.Cells))
	m.cellOf[id] = c
	m.out.Cells = append(m.out.Cells, Cell{ID: c, UseFF: true, FFInit: nd.Init})

	d := m.resolve(nd.Fanin[0])
	var lut [16]bool
	var inputs []Signal
	var err error
	if m.isGate(d) && m.fanout[d] == 1 {
		// Pack the D-cone into this registered cell.
		lut, inputs, err = m.lutOver(d, m.cut[d])
	} else {
		// Identity LUT over the D signal.
		var sig Signal
		sig, err = m.signalFor(d)
		if err == nil {
			switch sig.Kind {
			case SigConst:
				for i := range lut {
					lut[i] = sig.Const
				}
				inputs = nil
			default:
				for i := range lut {
					lut[i] = i&1 == 1
				}
				inputs = []Signal{sig}
			}
		}
	}
	if err != nil {
		return 0, err
	}
	cell := &m.out.Cells[c]
	cell.LUT = lut
	cell.Inputs = inputs
	return c, nil
}

// realize walks every primary output and flip-flop, materializing cells.
func (m *mapper) realize() error {
	// Flip-flops first: their cells exist regardless of output reachability
	// (their state is the computation).
	for _, d := range m.nl.DFFs {
		if _, err := m.realizeDFF(d); err != nil {
			return err
		}
	}
	for _, o := range m.nl.Outputs {
		sig, err := m.signalFor(m.nl.Node(o).Fanin[0])
		if err != nil {
			return err
		}
		m.out.Outputs = append(m.out.Outputs, sig)
	}
	return nil
}

// lutDepth computes the maximum combinational LUT depth of the mapped
// design (registered cell outputs are level 0 sources).
func (m *mapper) lutDepth() int {
	memo := make([]int, len(m.out.Cells))
	state := make([]uint8, len(m.out.Cells)) // 0 unvisited, 1 visiting, 2 done
	var depth func(c CellID) int
	depth = func(c CellID) int {
		if state[c] == 2 {
			return memo[c]
		}
		if state[c] == 1 {
			return 0 // cycle through registered cells only; treated as source
		}
		state[c] = 1
		cell := &m.out.Cells[c]
		in := 0
		for _, s := range cell.Inputs {
			if s.Kind == SigCell && !m.out.Cells[s.Cell].UseFF {
				if d := depth(s.Cell); d > in {
					in = d
				}
			}
		}
		d := in + 1
		memo[c] = d
		state[c] = 2
		return d
	}
	maxD := 0
	for i := range m.out.Cells {
		if d := depth(CellID(i)); d > maxD {
			maxD = d
		}
	}
	return maxD
}
