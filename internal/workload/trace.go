// Workload traces: the recorded wire form of an arrival stream. A Trace
// is a versioned, replayable sequence of timestamped Spec submissions
// with tenant labels — what the open-loop load harness (internal/loadgen,
// vfpgaload -trace) records once and replays at configurable speedup.
// Like Spec, a Trace is a pure value: timestamps are virtual nanoseconds,
// circuits are registry names, so equal traces replay to equal results.

package workload

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/sim"
)

// TraceVersion is the wire version this package reads and writes.
// Decoding any other version fails with ErrTraceVersion: the harness
// must never silently reinterpret a recorded workload.
const TraceVersion = "vfpga-trace/v1"

// Typed trace-decode errors. Callers match them with errors.Is to tell
// a malformed file from an incompatible one.
var (
	// ErrTraceVersion rejects a trace whose version field is not
	// TraceVersion.
	ErrTraceVersion = errors.New("workload: unsupported trace version")
	// ErrTraceOrder rejects entries whose timestamps decrease or are
	// negative: replay clocks only run forward.
	ErrTraceOrder = errors.New("workload: trace timestamps not monotonic")
	// ErrTraceTenant rejects an entry labeled with a tenant the trace
	// header does not declare (or a header declaring a tenant twice).
	ErrTraceTenant = errors.New("workload: trace tenant not declared")
	// ErrTraceEmpty rejects a trace with no entries or no tenants: there
	// is nothing to replay.
	ErrTraceEmpty = errors.New("workload: trace has no entries")
)

// TraceEntry is one arrival: at virtual time At, tenant Tenant submits
// Spec.
type TraceEntry struct {
	At     sim.Time `json:"at_ns"`
	Tenant string   `json:"tenant"`
	Spec   Spec     `json:"workload"`
}

// Trace is a recorded arrival stream. Tenants declares every tenant the
// entries may use (a strict allowlist, so a typo'd label fails at decode
// time, not mid-replay); Seed records the generator seed that produced
// the trace, for provenance only — replay never draws from it.
type Trace struct {
	Version string       `json:"version"`
	Seed    uint64       `json:"seed"`
	Tenants []string     `json:"tenants"`
	Entries []TraceEntry `json:"entries"`
}

// Validate checks the trace invariants: supported version, at least one
// tenant and entry, unique declared tenants, non-negative monotonically
// non-decreasing timestamps, every entry tenant declared, every spec
// valid.
func (tr *Trace) Validate() error {
	if tr.Version != TraceVersion {
		return fmt.Errorf("%w: %q (want %q)", ErrTraceVersion, tr.Version, TraceVersion)
	}
	if len(tr.Tenants) == 0 || len(tr.Entries) == 0 {
		return ErrTraceEmpty
	}
	declared := make(map[string]bool, len(tr.Tenants))
	for _, t := range tr.Tenants {
		if t == "" {
			return fmt.Errorf("%w: empty tenant name in header", ErrTraceTenant)
		}
		if declared[t] {
			return fmt.Errorf("%w: %q declared twice", ErrTraceTenant, t)
		}
		declared[t] = true
	}
	last := sim.Time(0)
	for i := range tr.Entries {
		e := &tr.Entries[i]
		if e.At < 0 || e.At < last {
			return fmt.Errorf("%w: entry %d at %d ns after %d ns", ErrTraceOrder, i, e.At, last)
		}
		last = e.At
		if !declared[e.Tenant] {
			return fmt.Errorf("%w: entry %d labeled %q (declared %v)", ErrTraceTenant, i, e.Tenant, tr.Tenants)
		}
		if err := e.Spec.Validate(); err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
	}
	return nil
}

// Duration returns the virtual time spanned by the arrivals: the last
// entry's timestamp (arrivals start at virtual zero).
func (tr *Trace) Duration() sim.Time {
	if len(tr.Entries) == 0 {
		return 0
	}
	return tr.Entries[len(tr.Entries)-1].At
}

// EncodeJSON renders the trace in its canonical wire form: indented,
// trailing newline, field order fixed by the struct.
func (tr *Trace) EncodeJSON() ([]byte, error) {
	b, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeTrace parses and validates a trace from its wire form. Unknown
// fields anywhere — header, entries, or the embedded specs — are
// rejected, so a misspelled knob fails loudly instead of silently
// defaulting, and every validation failure carries its typed error.
func DecodeTrace(data []byte) (*Trace, error) {
	var tr Trace
	if err := strictUnmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("workload: decode trace: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("workload: decode trace: %w", err)
	}
	return &tr, nil
}
