// Workload specs: the wire form of a workload. A Spec names one of the
// built-in scenario generators plus its full parameter set, serializes
// to/from JSON (the vfpgad job API submits Specs over the network), and
// builds the concrete Set on demand. Every duration is expressed in
// virtual nanoseconds (sim.Time), every circuit by its registry name, so
// a Spec is a pure value: equal Specs build equal Sets.

package workload

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// ErrNoCircuits is returned by Build when a spec generates a workload
// set with no circuits. Managers that pin circuits at construction
// (overlay, merged) index the circuit list unconditionally, so an empty
// set must be rejected here, as a typed error, before it reaches them.
var ErrNoCircuits = errors.New("workload: spec builds no circuits")

// SyntheticSpec is the wire form of SyntheticConfig: the circuit pool is
// named (netlist registry names) instead of holding netlist pointers.
// An empty Pool means DefaultPool.
type SyntheticSpec struct {
	Tasks        int      `json:"tasks"`
	OpsPerTask   int      `json:"ops_per_task"`
	EvalsPerOp   int64    `json:"evals_per_op"`
	ComputeTime  sim.Time `json:"compute_time_ns"`
	MeanInterval sim.Time `json:"mean_interval_ns"`
	Pool         []string `json:"pool,omitempty"`
	SwitchProb   float64  `json:"switch_prob"`
	Seed         uint64   `json:"seed"`
}

// Config resolves the named pool against the netlist registry and
// returns the equivalent SyntheticConfig.
func (s *SyntheticSpec) Config() (SyntheticConfig, error) {
	cfg := SyntheticConfig{
		Tasks: s.Tasks, OpsPerTask: s.OpsPerTask, EvalsPerOp: s.EvalsPerOp,
		ComputeTime: s.ComputeTime, MeanInterval: s.MeanInterval,
		SwitchProb: s.SwitchProb, Seed: s.Seed,
	}
	reg := netlist.Registry()
	for _, name := range s.Pool {
		gen, ok := reg[name]
		if !ok {
			return cfg, fmt.Errorf("workload: circuit %q not in registry", name)
		}
		cfg.CircuitPool = append(cfg.CircuitPool, gen())
	}
	return cfg, nil
}

// Spec is a named, self-contained, JSON-serializable workload: one
// scenario plus its parameters. Exactly the parameter block matching
// Scenario must be set; a Spec with all blocks nil builds the scenario's
// default configuration.
type Spec struct {
	Scenario   string            `json:"scenario"`
	Multimedia *MultimediaConfig `json:"multimedia,omitempty"`
	Telecom    *TelecomConfig    `json:"telecom,omitempty"`
	Diagnosis  *DiagnosisConfig  `json:"diagnosis,omitempty"`
	Storage    *StorageConfig    `json:"storage,omitempty"`
	Synthetic  *SyntheticSpec    `json:"synthetic,omitempty"`
}

// Scenario names understood by Spec.
var scenarios = []string{"diagnosis", "multimedia", "storage", "synthetic", "telecom"}

// Scenarios returns the known scenario names, sorted.
func Scenarios() []string { return append([]string(nil), scenarios...) }

// DefaultSynthetic returns the synthetic mix used by default specs:
// a moderate load over the default circuit pool.
func DefaultSynthetic() SyntheticSpec {
	return SyntheticSpec{
		Tasks: 6, OpsPerTask: 6, EvalsPerOp: 30_000,
		ComputeTime: 300 * sim.Microsecond, SwitchProb: 0.3, Seed: 1,
	}
}

// BuiltinSpec returns the named scenario with its default parameters
// fully spelled out (no nil blocks), so the wire form documents every
// knob.
func BuiltinSpec(name string) (Spec, error) {
	switch name {
	case "multimedia":
		c := DefaultMultimedia()
		return Spec{Scenario: name, Multimedia: &c}, nil
	case "telecom":
		c := DefaultTelecom()
		return Spec{Scenario: name, Telecom: &c}, nil
	case "diagnosis":
		c := DefaultDiagnosis()
		return Spec{Scenario: name, Diagnosis: &c}, nil
	case "storage":
		c := DefaultStorage()
		return Spec{Scenario: name, Storage: &c}, nil
	case "synthetic":
		c := DefaultSynthetic()
		return Spec{Scenario: name, Synthetic: &c}, nil
	}
	return Spec{}, fmt.Errorf("workload: unknown scenario %q (have %v)", name, scenarios)
}

// BuiltinSpecs returns every scenario's default Spec, sorted by name.
func BuiltinSpecs() []Spec {
	names := Scenarios()
	sort.Strings(names)
	out := make([]Spec, 0, len(names))
	for _, n := range names {
		s, err := BuiltinSpec(n)
		if err != nil {
			panic(err) // scenarios and BuiltinSpec are maintained together
		}
		out = append(out, s)
	}
	return out
}

// Validate checks that the scenario is known and that no parameter block
// for a different scenario is set (a typo'd submission should fail at
// admission, not build a surprise default).
func (s *Spec) Validate() error {
	known := false
	for _, n := range scenarios {
		if s.Scenario == n {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("workload: unknown scenario %q (have %v)", s.Scenario, scenarios)
	}
	type block struct {
		name string
		set  bool
	}
	blocks := []block{
		{"multimedia", s.Multimedia != nil},
		{"telecom", s.Telecom != nil},
		{"diagnosis", s.Diagnosis != nil},
		{"storage", s.Storage != nil},
		{"synthetic", s.Synthetic != nil},
	}
	for _, b := range blocks {
		if b.set && b.name != s.Scenario {
			return fmt.Errorf("workload: scenario %q with %s parameters set", s.Scenario, b.name)
		}
	}
	if s.Scenario == "synthetic" && s.Synthetic != nil {
		if _, err := s.Synthetic.Config(); err != nil {
			return err
		}
	}
	return nil
}

// Build validates the spec and generates its Set.
func (s *Spec) Build() (*Set, error) {
	set, err := s.build()
	if err != nil {
		return nil, err
	}
	if err := validateSet(set, s.Scenario); err != nil {
		return nil, err
	}
	return set, nil
}

// validateSet rejects generated sets no manager can run. Today's
// built-in generators always produce circuits (synthetic falls back to
// DefaultPool), so this is the typed safety net for future generators
// and hand-built specs.
func validateSet(set *Set, scenario string) error {
	if len(set.Circuits) == 0 {
		return fmt.Errorf("%w (scenario %q)", ErrNoCircuits, scenario)
	}
	return nil
}

func (s *Spec) build() (*Set, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Scenario {
	case "multimedia":
		cfg := DefaultMultimedia()
		if s.Multimedia != nil {
			cfg = *s.Multimedia
		}
		return Multimedia(cfg), nil
	case "telecom":
		cfg := DefaultTelecom()
		if s.Telecom != nil {
			cfg = *s.Telecom
		}
		return Telecom(cfg), nil
	case "diagnosis":
		cfg := DefaultDiagnosis()
		if s.Diagnosis != nil {
			cfg = *s.Diagnosis
		}
		return Diagnosis(cfg), nil
	case "storage":
		cfg := DefaultStorage()
		if s.Storage != nil {
			cfg = *s.Storage
		}
		return Storage(cfg), nil
	case "synthetic":
		spec := DefaultSynthetic()
		if s.Synthetic != nil {
			spec = *s.Synthetic
		}
		cfg, err := spec.Config()
		if err != nil {
			return nil, err
		}
		return Synthetic(cfg), nil
	}
	return nil, fmt.Errorf("workload: unknown scenario %q", s.Scenario)
}

// EncodeJSON renders the spec in its canonical wire form.
func (s *Spec) EncodeJSON() ([]byte, error) { return json.Marshal(s) }

// UnmarshalJSON decodes a spec with partial-block semantics: each
// parameter block that is present starts from its scenario's defaults,
// so `{"scenario":"telecom","telecom":{"sessions":4}}` overrides only
// the session count. Unknown fields are rejected here (not left to the
// caller's decoder — custom unmarshalers don't inherit
// DisallowUnknownFields), so misspelled parameters fail loudly.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var raw struct {
		Scenario   string          `json:"scenario"`
		Multimedia json.RawMessage `json:"multimedia"`
		Telecom    json.RawMessage `json:"telecom"`
		Diagnosis  json.RawMessage `json:"diagnosis"`
		Storage    json.RawMessage `json:"storage"`
		Synthetic  json.RawMessage `json:"synthetic"`
	}
	if err := strictUnmarshal(data, &raw); err != nil {
		return err
	}
	*s = Spec{Scenario: raw.Scenario}
	present := func(m json.RawMessage) bool { return m != nil && string(m) != "null" }
	if present(raw.Multimedia) {
		cfg := DefaultMultimedia()
		if err := strictUnmarshal(raw.Multimedia, &cfg); err != nil {
			return err
		}
		s.Multimedia = &cfg
	}
	if present(raw.Telecom) {
		cfg := DefaultTelecom()
		if err := strictUnmarshal(raw.Telecom, &cfg); err != nil {
			return err
		}
		s.Telecom = &cfg
	}
	if present(raw.Diagnosis) {
		cfg := DefaultDiagnosis()
		if err := strictUnmarshal(raw.Diagnosis, &cfg); err != nil {
			return err
		}
		s.Diagnosis = &cfg
	}
	if present(raw.Storage) {
		cfg := DefaultStorage()
		if err := strictUnmarshal(raw.Storage, &cfg); err != nil {
			return err
		}
		s.Storage = &cfg
	}
	if present(raw.Synthetic) {
		cfg := DefaultSynthetic()
		if err := strictUnmarshal(raw.Synthetic, &cfg); err != nil {
			return err
		}
		s.Synthetic = &cfg
	}
	return nil
}

// DecodeJSON parses a spec from its wire form, rejecting unknown fields
// so misspelled parameters fail loudly instead of silently defaulting.
func DecodeJSON(data []byte) (*Spec, error) {
	var s Spec
	if err := strictUnmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("workload: decode spec: %w", err)
	}
	return &s, nil
}

func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
