package workload

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestSpecRoundTrip: every built-in spec must encode→decode→encode
// byte-identically — the property the vfpgad job API depends on. A field
// that loses its JSON tag, turns unexported, or gains a non-serializable
// type breaks this immediately.
func TestSpecRoundTrip(t *testing.T) {
	specs := BuiltinSpecs()
	if len(specs) != len(Scenarios()) {
		t.Fatalf("BuiltinSpecs returned %d specs for %d scenarios", len(specs), len(Scenarios()))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Scenario, func(t *testing.T) {
			first, err := spec.EncodeJSON()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			decoded, err := DecodeJSON(first)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			second, err := decoded.EncodeJSON()
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("round trip not byte-identical:\n first: %s\nsecond: %s", first, second)
			}
		})
	}
}

// A named pool must survive the round trip and resolve against the
// registry; an unknown name must be rejected at validation time.
func TestSyntheticSpecPool(t *testing.T) {
	spec := Spec{Scenario: "synthetic", Synthetic: &SyntheticSpec{
		Tasks: 2, OpsPerTask: 2, EvalsPerOp: 1000,
		Pool: []string{"parity16", "adder8"}, Seed: 7,
	}}
	data, err := spec.EncodeJSON()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := DecodeJSON(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	set, err := back.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if len(set.Circuits) != 2 {
		t.Fatalf("pool resolved to %d circuits, want 2", len(set.Circuits))
	}
	bad := Spec{Scenario: "synthetic", Synthetic: &SyntheticSpec{Tasks: 1, OpsPerTask: 1, Pool: []string{"nope"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown pool circuit passed validation")
	}
}

// Builds from a spec must be deterministic, and a scenario-only spec
// must build the scenario's default set.
func TestSpecBuildDeterministic(t *testing.T) {
	for _, spec := range BuiltinSpecs() {
		a, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", spec.Scenario, err)
		}
		b, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", spec.Scenario, err)
		}
		ja, _ := json.Marshal(a.Tasks)
		jb, _ := json.Marshal(b.Tasks)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("%s: two builds of the same spec differ", spec.Scenario)
		}
		bare := Spec{Scenario: spec.Scenario}
		c, err := bare.Build()
		if err != nil {
			t.Fatalf("%s bare: %v", spec.Scenario, err)
		}
		jc, _ := json.Marshal(c.Tasks)
		if !bytes.Equal(ja, jc) {
			t.Fatalf("%s: bare spec build differs from default spec build", spec.Scenario)
		}
	}
}

// Mismatched parameter blocks and unknown fields are rejected.
func TestSpecValidate(t *testing.T) {
	mm := DefaultMultimedia()
	bad := Spec{Scenario: "telecom", Multimedia: &mm}
	if err := bad.Validate(); err == nil {
		t.Fatal("telecom spec with multimedia block passed validation")
	}
	if _, err := DecodeJSON([]byte(`{"scenario":"telecom","bogus":1}`)); err == nil {
		t.Fatal("unknown field passed strict decoding")
	}
	if err := (&Spec{Scenario: "martian"}).Validate(); err == nil {
		t.Fatal("unknown scenario passed validation")
	}
}

// TestSpecPartialBlock: a parameter block that sets only some fields
// keeps the scenario defaults for the rest — the contract the vfpgad
// API documents ("omitted fields use the scenario's defaults").
func TestSpecPartialBlock(t *testing.T) {
	s, err := DecodeJSON([]byte(`{"scenario":"telecom","telecom":{"sessions":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultTelecom()
	want.Sessions = 4
	if s.Telecom == nil || *s.Telecom != want {
		t.Errorf("partial telecom block = %+v, want %+v", s.Telecom, want)
	}
	if _, err := s.Build(); err != nil {
		t.Errorf("partial spec does not build: %v", err)
	}

	// An explicit null block is the same as an absent one.
	s, err = DecodeJSON([]byte(`{"scenario":"telecom","telecom":null}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Telecom != nil {
		t.Errorf("null block decoded as %+v, want nil", s.Telecom)
	}

	// Unknown fields inside a block still fail loudly.
	if _, err := DecodeJSON([]byte(`{"scenario":"telecom","telecom":{"sesions":4}}`)); err == nil {
		t.Error("misspelled block field accepted")
	}
}
