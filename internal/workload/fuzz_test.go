package workload_test

// Fuzz target for the spec wire format: DecodeJSON on arbitrary bytes
// must never panic, must reject what it cannot represent, and for every
// input it accepts the canonical re-encoding must round-trip to a
// byte-identical canonical form (decode → encode is a fixpoint). The
// partial-block defaults merge makes this non-trivial: a sparse block
// decodes into a fully populated one, and that full form has to decode
// back to itself.

import (
	"bytes"
	"testing"

	"repro/internal/workload"
)

func FuzzSpecDecode(f *testing.F) {
	for _, seed := range []string{
		`{"scenario":"multimedia"}`,
		`{"scenario":"telecom","telecom":{"sessions":4}}`,
		`{"scenario":"diagnosis","diagnosis":{}}`,
		`{"scenario":"storage","storage":{"streams":2}}`,
		`{"scenario":"synthetic","synthetic":{"tasks":3,"ops_per_task":2}}`,
		`{"scenario":"telecom","telecom":null}`,
		`{"scenario":""}`,
		`{}`,
		`{"scenario":"multimedia","bogus":1}`,
		`{"scenario":"multimedia","telecom":{"sessions":-1}}`,
		`not json at all`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := workload.DecodeJSON(data)
		if err != nil {
			return // rejected inputs just must not panic
		}
		_ = spec.Validate() // must not panic on anything decode accepted
		canonical, err := spec.EncodeJSON()
		if err != nil {
			t.Fatalf("accepted spec failed to encode: %v", err)
		}
		again, err := workload.DecodeJSON(canonical)
		if err != nil {
			t.Fatalf("canonical form rejected on re-decode: %v\n%s", err, canonical)
		}
		stable, err := again.EncodeJSON()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(canonical, stable) {
			t.Fatalf("canonical form is not a fixpoint:\n first %s\nsecond %s", canonical, stable)
		}
	})
}
