package workload_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func validTrace(t *testing.T) *workload.Trace {
	t.Helper()
	mm, err := workload.BuiltinSpec("multimedia")
	if err != nil {
		t.Fatal(err)
	}
	tc, err := workload.BuiltinSpec("telecom")
	if err != nil {
		t.Fatal(err)
	}
	return &workload.Trace{
		Version: workload.TraceVersion,
		Seed:    7,
		Tenants: []string{"alpha", "beta"},
		Entries: []workload.TraceEntry{
			{At: 0, Tenant: "alpha", Spec: mm},
			{At: 1500, Tenant: "beta", Spec: tc},
			{At: 1500, Tenant: "alpha", Spec: mm}, // equal timestamps are legal
			{At: 9000, Tenant: "beta", Spec: tc},
		},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := validTrace(t)
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if got, want := tr.Duration(), sim.Time(9000); got != want {
		t.Fatalf("Duration = %d, want %d", got, want)
	}
	wire, err := tr.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	again, err := workload.DecodeTrace(wire)
	if err != nil {
		t.Fatalf("canonical form rejected: %v", err)
	}
	stable, err := again.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(wire) != string(stable) {
		t.Fatalf("canonical form is not a fixpoint:\n first %s\nsecond %s", wire, stable)
	}
}

func TestTraceTypedErrors(t *testing.T) {
	base := validTrace(t)
	cases := []struct {
		name   string
		mutate func(*workload.Trace)
		want   error
	}{
		{"bad version", func(tr *workload.Trace) { tr.Version = "vfpga-trace/v0" }, workload.ErrTraceVersion},
		{"no entries", func(tr *workload.Trace) { tr.Entries = nil }, workload.ErrTraceEmpty},
		{"no tenants", func(tr *workload.Trace) { tr.Tenants = nil }, workload.ErrTraceEmpty},
		{"duplicate tenant", func(tr *workload.Trace) { tr.Tenants = []string{"alpha", "alpha"} }, workload.ErrTraceTenant},
		{"empty tenant name", func(tr *workload.Trace) { tr.Tenants = []string{""} }, workload.ErrTraceTenant},
		{"undeclared tenant", func(tr *workload.Trace) { tr.Entries[1].Tenant = "gamma" }, workload.ErrTraceTenant},
		{"time reversal", func(tr *workload.Trace) { tr.Entries[3].At = 100 }, workload.ErrTraceOrder},
		{"negative time", func(tr *workload.Trace) { tr.Entries[0].At = -1 }, workload.ErrTraceOrder},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := validTrace(t)
			tc.mutate(tr)
			err := tr.Validate()
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate = %v, want %v", err, tc.want)
			}
			// The same typed error must survive a decode of the wire form.
			wire, merr := tr.EncodeJSON()
			if merr != nil {
				t.Fatal(merr)
			}
			if _, derr := workload.DecodeTrace(wire); !errors.Is(derr, tc.want) {
				t.Fatalf("DecodeTrace = %v, want %v", derr, tc.want)
			}
		})
	}
	_ = base
}

func TestTraceRejectsUnknownFields(t *testing.T) {
	tr := validTrace(t)
	wire, err := tr.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		strings.Replace(string(wire), `"version"`, `"bogus": 1, "version"`, 1),
		strings.Replace(string(wire), `"at_ns"`, `"at_millis": 2, "at_ns"`, 1),
		strings.Replace(string(wire), `"scenario"`, `"scnario"`, 1),
	} {
		if _, err := workload.DecodeTrace([]byte(bad)); err == nil {
			t.Fatalf("unknown field accepted:\n%s", bad)
		}
	}
}

func TestTraceRejectsInvalidSpec(t *testing.T) {
	tr := validTrace(t)
	tr.Entries[0].Spec = workload.Spec{Scenario: "no-such-scenario"}
	if err := tr.Validate(); err == nil {
		t.Fatal("entry with unknown scenario accepted")
	}
}
