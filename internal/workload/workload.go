// Package workload generates the task mixes of the paper's application
// scenarios (§5): multimedia codec switching, telecom protocol adaptation,
// and embedded periodic diagnosis — plus parameterized synthetic mixes for
// the partitioning and pagination sweeps.
//
// A generator returns TaskSpecs (name, priority, arrival, program) and the
// set of netlists those programs reference; the caller registers the
// netlists with the engine and spawns the specs into the OS. Everything
// is deterministic for a given seed.
package workload

import (
	"fmt"

	"repro/internal/hostos"
	"repro/internal/netlist"
	"repro/internal/rng"
	"repro/internal/sim"
)

// TaskSpec describes one task to spawn.
type TaskSpec struct {
	Name     string
	Priority int
	Arrival  sim.Time
	Program  []hostos.Op
}

// Set is a complete workload: the tasks and the circuits they use.
type Set struct {
	Tasks    []TaskSpec
	Circuits []*netlist.Netlist
}

// Spawn registers the set's tasks into the OS at their arrival times.
func (s *Set) Spawn(os *hostos.OS) {
	for _, ts := range s.Tasks {
		os.SpawnAt(ts.Arrival, ts.Name, ts.Priority, ts.Program)
	}
}

// CircuitNames returns the names of all referenced circuits, in order.
func (s *Set) CircuitNames() []string {
	var names []string
	for _, c := range s.Circuits {
		names = append(names, c.Name)
	}
	return names
}

func fpga(circuit string, evals int64) hostos.Op {
	return hostos.UseFPGA(hostos.FPGARequest{Circuit: circuit, Evaluations: evals})
}

func seq(circuit string, cycles int64) hostos.Op {
	return hostos.UseFPGA(hostos.FPGARequest{Circuit: circuit, Cycles: cycles})
}

// MultimediaConfig parameterizes the codec-switching scenario: "multimedia
// systems can benefit from the use of VFPGA implementing different voice
// and image compression/decompression algorithms in order to accommodate
// different standards efficiently on a limited-size FPGA".
type MultimediaConfig struct {
	Streams     int      `json:"streams"`      // concurrent media streams (tasks)
	Frames      int      `json:"frames"`       // frames per stream
	EvalsPerOp  int64    `json:"evals_per_op"` // hardware work per frame
	SwitchEvery int      `json:"switch_every"` // frames between codec standard switches
	ComputeTime sim.Time `json:"compute_time_ns"`
	Seed        uint64   `json:"seed"`
}

// DefaultMultimedia returns a moderate codec workload.
func DefaultMultimedia() MultimediaConfig {
	return MultimediaConfig{
		Streams:     4,
		Frames:      24,
		EvalsPerOp:  20_000,
		SwitchEvery: 8,
		ComputeTime: 500 * sim.Microsecond,
		Seed:        1,
	}
}

// Multimedia generates the codec scenario. The "codecs" are distinct
// datapath circuits of comparable size (transform, entropy-code, filter).
func Multimedia(cfg MultimediaConfig) *Set {
	codecs := []*netlist.Netlist{
		netlist.Multiplier(4),     // transform-like datapath
		netlist.ALU(8),            // predictive filter
		netlist.BarrelShifter(16), // bit-plane packing
	}
	src := rng.New(cfg.Seed)
	set := &Set{Circuits: codecs}
	for s := 0; s < cfg.Streams; s++ {
		taskSrc := src.Split()
		codec := taskSrc.Intn(len(codecs))
		var prog []hostos.Op
		for f := 0; f < cfg.Frames; f++ {
			if cfg.SwitchEvery > 0 && f > 0 && f%cfg.SwitchEvery == 0 {
				codec = (codec + 1 + taskSrc.Intn(len(codecs)-1)) % len(codecs)
			}
			prog = append(prog,
				hostos.Compute(cfg.ComputeTime),
				fpga(codecs[codec].Name, cfg.EvalsPerOp),
			)
		}
		set.Tasks = append(set.Tasks, TaskSpec{
			Name:    fmt.Sprintf("stream%d", s),
			Arrival: sim.Time(s) * sim.Millisecond,
			Program: prog,
		})
	}
	return set
}

// TelecomConfig parameterizes protocol adaptation: "modems, faxes,
// switching systems ... can adapt their operating mode changing the
// compression and encoding algorithms according to the partners involved".
type TelecomConfig struct {
	Sessions     int      `json:"sessions"`
	MeanInterval sim.Time `json:"mean_interval_ns"` // Poisson session inter-arrival
	PacketsPer   int      `json:"packets_per"`      // hardware bursts per session
	CyclesPerPkt int64    `json:"cycles_per_pkt"`
	ProtocolSkew float64  `json:"protocol_skew"` // Zipf exponent over protocols
	Seed         uint64   `json:"seed"`
}

// DefaultTelecom returns a moderate protocol-mix workload.
func DefaultTelecom() TelecomConfig {
	return TelecomConfig{
		Sessions:     12,
		MeanInterval: 2 * sim.Millisecond,
		PacketsPer:   6,
		CyclesPerPkt: 15_000,
		ProtocolSkew: 1.1,
		Seed:         2,
	}
}

// Telecom generates the protocol scenario: each arriving session speaks
// one protocol (Zipf-popular), implemented as coding/CRC engines.
func Telecom(cfg TelecomConfig) *Set {
	protocols := []*netlist.Netlist{
		netlist.CRC(16, 0x8005),                 // framing check
		netlist.CRC(8, 0x07),                    // legacy framing
		netlist.LFSR(16, []int{15, 13, 12, 10}), // scrambler
		netlist.GrayEncoder(8),                  // modulation mapping
	}
	src := rng.New(cfg.Seed)
	zipf := rng.NewZipf(src.Split(), len(protocols), cfg.ProtocolSkew)
	set := &Set{Circuits: protocols}
	arrival := sim.Time(0)
	for s := 0; s < cfg.Sessions; s++ {
		arrival += sim.Time(float64(cfg.MeanInterval) * src.ExpFloat64())
		proto := protocols[zipf.Draw()]
		var prog []hostos.Op
		for p := 0; p < cfg.PacketsPer; p++ {
			prog = append(prog,
				hostos.Compute(200*sim.Microsecond),
				seq(proto.Name, cfg.CyclesPerPkt),
			)
		}
		set.Tasks = append(set.Tasks, TaskSpec{
			Name:    fmt.Sprintf("session%d", s),
			Arrival: arrival,
			Program: prog,
		})
	}
	return set
}

// DiagnosisConfig parameterizes the embedded-control scenario: "execution
// of different non-frequent functions (e.g., periodic system testing and
// diagnosis as well as tuning of the operating parameters)".
type DiagnosisConfig struct {
	ControlOps   int      `json:"control_ops"`   // main-loop iterations
	ControlEvals int64    `json:"control_evals"` // hardware work per control iteration
	DiagEvery    int      `json:"diag_every"`    // control iterations between diagnostic runs
	DiagEvals    int64    `json:"diag_evals"`
	ComputeTime  sim.Time `json:"compute_time_ns"`
	Seed         uint64   `json:"seed"`
}

// DefaultDiagnosis returns a control loop with periodic diagnosis.
func DefaultDiagnosis() DiagnosisConfig {
	return DiagnosisConfig{
		ControlOps:   40,
		ControlEvals: 5_000,
		DiagEvery:    10,
		DiagEvals:    50_000,
		ComputeTime:  300 * sim.Microsecond,
		Seed:         3,
	}
}

// Diagnosis generates the embedded scenario: a high-priority control task
// using a small resident-worthy circuit, plus low-priority diagnostic
// tasks arriving periodically with a rarely-used test circuit.
func Diagnosis(cfg DiagnosisConfig) *Set {
	control := netlist.ALU(8)        // control-law datapath
	diag := netlist.PopCount(32)     // signature analysis
	tuning := netlist.Comparator(16) // threshold tuning
	set := &Set{Circuits: []*netlist.Netlist{control, diag, tuning}}

	var ctrl []hostos.Op
	for i := 0; i < cfg.ControlOps; i++ {
		ctrl = append(ctrl, hostos.Compute(cfg.ComputeTime), fpga(control.Name, cfg.ControlEvals))
	}
	set.Tasks = append(set.Tasks, TaskSpec{Name: "control", Priority: 0, Program: ctrl})

	period := sim.Time(cfg.DiagEvery) * (cfg.ComputeTime + 2*sim.Millisecond)
	n := cfg.ControlOps / cfg.DiagEvery
	for i := 0; i < n; i++ {
		circuit := diag.Name
		if i%2 == 1 {
			circuit = tuning.Name
		}
		set.Tasks = append(set.Tasks, TaskSpec{
			Name:     fmt.Sprintf("diag%d", i),
			Priority: 5,
			Arrival:  sim.Time(i+1) * period,
			Program: []hostos.Op{
				hostos.Compute(100 * sim.Microsecond),
				fpga(circuit, cfg.DiagEvals),
			},
		})
	}
	return set
}

// StorageConfig parameterizes the disk-array scenario: "high-performance
// programmable interfaces for networking and complex disk arrays for
// high-volume fault-tolerant memory storage can be realized with
// different protocols and standards activated according to the task
// running on the processor" (§5).
type StorageConfig struct {
	Requests     int      `json:"requests"`
	MeanInterval sim.Time `json:"mean_interval_ns"`
	// WriteRatio is the fraction of requests that are writes (parity
	// generation); reads only verify (CRC check).
	WriteRatio  float64 `json:"write_ratio"`
	BlockCycles int64   `json:"block_cycles"` // hardware cycles per block processed
	Seed        uint64  `json:"seed"`
}

// DefaultStorage returns a moderate fault-tolerant storage workload.
func DefaultStorage() StorageConfig {
	return StorageConfig{
		Requests:     16,
		MeanInterval: 1500 * sim.Microsecond,
		WriteRatio:   0.4,
		BlockCycles:  20_000,
		Seed:         4,
	}
}

// Storage generates the disk-array scenario: request tasks arrive over
// time; writes run parity generation (RAID-style XOR) then integrity
// coding, reads run integrity checking only. The two hardware functions
// are natural residents for overlaying.
func Storage(cfg StorageConfig) *Set {
	parity := netlist.Parity(32)          // stripe parity (XOR across units)
	integrity := netlist.CRC(16, 0x8005)  // block integrity code
	correct := netlist.Hamming74Decoder() // degraded-mode reconstruction
	set := &Set{Circuits: []*netlist.Netlist{parity, integrity, correct}}
	src := rng.New(cfg.Seed)
	arrival := sim.Time(0)
	for r := 0; r < cfg.Requests; r++ {
		taskSrc := src.Split()
		arrival += sim.Time(float64(cfg.MeanInterval) * taskSrc.ExpFloat64())
		var prog []hostos.Op
		prog = append(prog, hostos.Compute(150*sim.Microsecond)) // request parsing
		if taskSrc.Float64() < cfg.WriteRatio {
			// Write: parity across the stripe, then integrity code.
			prog = append(prog,
				fpga(parity.Name, cfg.BlockCycles),
				seq(integrity.Name, cfg.BlockCycles),
			)
		} else {
			// Read: integrity check; occasionally degraded-mode repair.
			prog = append(prog, seq(integrity.Name, cfg.BlockCycles))
			if taskSrc.Float64() < 0.2 {
				prog = append(prog, fpga(correct.Name, cfg.BlockCycles/4))
			}
		}
		prog = append(prog, hostos.Compute(100*sim.Microsecond)) // completion
		set.Tasks = append(set.Tasks, TaskSpec{
			Name:    fmt.Sprintf("req%d", r),
			Arrival: arrival,
			Program: prog,
		})
	}
	return set
}

// SyntheticConfig parameterizes the generic mix used by the partitioning
// and scheduling sweeps.
type SyntheticConfig struct {
	Tasks        int
	OpsPerTask   int
	EvalsPerOp   int64
	ComputeTime  sim.Time
	MeanInterval sim.Time // Poisson arrivals; 0 = all at time zero
	// CircuitPool limits the distinct circuits; tasks draw uniformly.
	CircuitPool []*netlist.Netlist
	// SwitchProb is the chance an op uses a different circuit than the
	// task's previous op.
	SwitchProb float64
	Seed       uint64
}

// DefaultPool returns a mixed-size circuit pool: small parity through a
// wide multiplier, matching the paper's "heterogeneous circuit sizes".
func DefaultPool() []*netlist.Netlist {
	return []*netlist.Netlist{
		netlist.Parity(16),
		netlist.Adder(8),
		netlist.Comparator(16),
		netlist.Counter(8),
		netlist.ALU(8),
		netlist.Multiplier(4),
	}
}

// Synthetic generates the generic mix.
func Synthetic(cfg SyntheticConfig) *Set {
	if len(cfg.CircuitPool) == 0 {
		cfg.CircuitPool = DefaultPool()
	}
	src := rng.New(cfg.Seed)
	set := &Set{Circuits: cfg.CircuitPool}
	arrival := sim.Time(0)
	for ti := 0; ti < cfg.Tasks; ti++ {
		taskSrc := src.Split()
		if cfg.MeanInterval > 0 {
			arrival += sim.Time(float64(cfg.MeanInterval) * taskSrc.ExpFloat64())
		}
		cur := taskSrc.Intn(len(cfg.CircuitPool))
		var prog []hostos.Op
		for op := 0; op < cfg.OpsPerTask; op++ {
			if op > 0 && taskSrc.Float64() < cfg.SwitchProb && len(cfg.CircuitPool) > 1 {
				cur = (cur + 1 + taskSrc.Intn(len(cfg.CircuitPool)-1)) % len(cfg.CircuitPool)
			}
			c := cfg.CircuitPool[cur]
			var hwOp hostos.Op
			if c.IsSequential() {
				hwOp = seq(c.Name, cfg.EvalsPerOp)
			} else {
				hwOp = fpga(c.Name, cfg.EvalsPerOp)
			}
			prog = append(prog, hostos.Compute(cfg.ComputeTime), hwOp)
		}
		set.Tasks = append(set.Tasks, TaskSpec{
			Name:    fmt.Sprintf("task%d", ti),
			Arrival: arrival,
			Program: prog,
		})
	}
	return set
}

// PagedConfig parameterizes a paging reference workload over one circuit.
type PagedConfig struct {
	Circuit *netlist.Netlist
	Refs    int     // page references (ops)
	Pages   int     // total pages of the circuit (caller computed)
	WorkSet int     // pages per op
	Skew    float64 // Zipf exponent over pages
	Evals   int64
	Seed    uint64
}

// Paged generates a single task issuing page-scoped operations with a
// Zipf-skewed reference string — the classic VM-style locality model.
func Paged(cfg PagedConfig) *Set {
	src := rng.New(cfg.Seed)
	zipf := rng.NewZipf(src.Split(), cfg.Pages, cfg.Skew)
	perm := src.Split().Perm(cfg.Pages) // decouple popularity from page index
	var prog []hostos.Op
	for r := 0; r < cfg.Refs; r++ {
		seen := map[int]bool{}
		var pages []int
		for len(pages) < cfg.WorkSet && len(pages) < cfg.Pages {
			p := perm[zipf.Draw()]
			if !seen[p] {
				seen[p] = true
				pages = append(pages, p)
			}
		}
		prog = append(prog, hostos.UseFPGA(hostos.FPGARequest{
			Circuit:     cfg.Circuit.Name,
			Evaluations: cfg.Evals,
			Pages:       pages,
		}))
	}
	return &Set{
		Tasks:    []TaskSpec{{Name: "paged", Program: prog}},
		Circuits: []*netlist.Netlist{cfg.Circuit},
	}
}
