package workload_test

// Fuzz target for the trace wire format, mirroring FuzzSpecDecode:
// DecodeTrace on arbitrary bytes must never panic, must reject what it
// cannot represent (bad versions, unknown fields, non-monotonic
// timestamps, undeclared tenants), and for every input it accepts the
// canonical re-encoding must round-trip to a byte-identical canonical
// form — the property the byte-identical replay layer rests on.

import (
	"bytes"
	"testing"

	"repro/internal/workload"
)

func FuzzTraceDecode(f *testing.F) {
	for _, seed := range []string{
		`{"version":"vfpga-trace/v1","seed":1,"tenants":["a"],"entries":[{"at_ns":0,"tenant":"a","workload":{"scenario":"multimedia"}}]}`,
		`{"version":"vfpga-trace/v1","seed":0,"tenants":["a","b"],"entries":[{"at_ns":5,"tenant":"a","workload":{"scenario":"telecom","telecom":{"sessions":4}}},{"at_ns":5,"tenant":"b","workload":{"scenario":"storage"}}]}`,
		`{"version":"vfpga-trace/v2","seed":1,"tenants":["a"],"entries":[{"at_ns":0,"tenant":"a","workload":{"scenario":"multimedia"}}]}`,
		`{"version":"vfpga-trace/v1","seed":1,"tenants":["a"],"entries":[{"at_ns":9,"tenant":"a","workload":{"scenario":"multimedia"}},{"at_ns":3,"tenant":"a","workload":{"scenario":"multimedia"}}]}`,
		`{"version":"vfpga-trace/v1","seed":1,"tenants":["a"],"entries":[{"at_ns":0,"tenant":"b","workload":{"scenario":"multimedia"}}]}`,
		`{"version":"vfpga-trace/v1","seed":1,"tenants":[],"entries":[]}`,
		`{"version":"vfpga-trace/v1","seed":1,"tenants":["a"],"entries":[{"at_ns":0,"tenant":"a","workload":{"scenario":"multimedia"},"bogus":1}]}`,
		`{}`,
		`not json at all`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := workload.DecodeTrace(data)
		if err != nil {
			return // rejected inputs just must not panic
		}
		canonical, err := tr.EncodeJSON()
		if err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		again, err := workload.DecodeTrace(canonical)
		if err != nil {
			t.Fatalf("canonical form rejected on re-decode: %v\n%s", err, canonical)
		}
		stable, err := again.EncodeJSON()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(canonical, stable) {
			t.Fatalf("canonical form is not a fixpoint:\n first %s\nsecond %s", canonical, stable)
		}
	})
}
