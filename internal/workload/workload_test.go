package workload

import (
	"testing"

	"repro/internal/hostos"
	"repro/internal/netlist"
)

func TestMultimediaShape(t *testing.T) {
	cfg := DefaultMultimedia()
	set := Multimedia(cfg)
	if len(set.Tasks) != cfg.Streams {
		t.Fatalf("tasks %d", len(set.Tasks))
	}
	if len(set.Circuits) == 0 {
		t.Fatal("no circuits")
	}
	for _, ts := range set.Tasks {
		if len(ts.Program) != 2*cfg.Frames {
			t.Fatalf("%s program %d ops, want %d", ts.Name, len(ts.Program), 2*cfg.Frames)
		}
	}
}

func TestMultimediaSwitchesCodecs(t *testing.T) {
	set := Multimedia(DefaultMultimedia())
	switched := false
	for _, ts := range set.Tasks {
		var last string
		for _, op := range ts.Program {
			if op.Kind != hostos.OpFPGA {
				continue
			}
			if last != "" && op.Req.Circuit != last {
				switched = true
			}
			last = op.Req.Circuit
		}
	}
	if !switched {
		t.Fatal("no codec switches generated")
	}
}

func TestTelecomArrivalsMonotonic(t *testing.T) {
	set := Telecom(DefaultTelecom())
	for i := 1; i < len(set.Tasks); i++ {
		if set.Tasks[i].Arrival < set.Tasks[i-1].Arrival {
			t.Fatal("arrivals not monotonic")
		}
	}
	if set.Tasks[len(set.Tasks)-1].Arrival == 0 {
		t.Fatal("no arrival spread")
	}
}

func TestTelecomUsesSequentialCircuits(t *testing.T) {
	set := Telecom(DefaultTelecom())
	for _, ts := range set.Tasks {
		for _, op := range ts.Program {
			if op.Kind == hostos.OpFPGA && op.Req.Cycles == 0 {
				t.Fatalf("%s has FPGA op without cycles", ts.Name)
			}
		}
	}
}

func TestDiagnosisPriorities(t *testing.T) {
	set := Diagnosis(DefaultDiagnosis())
	if set.Tasks[0].Name != "control" || set.Tasks[0].Priority != 0 {
		t.Fatal("control task malformed")
	}
	if len(set.Tasks) < 2 {
		t.Fatal("no diagnostic tasks")
	}
	for _, ts := range set.Tasks[1:] {
		if ts.Priority <= set.Tasks[0].Priority {
			t.Fatal("diagnostics should have lower priority")
		}
		if ts.Arrival == 0 {
			t.Fatal("diagnostics should arrive later")
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	cfg := SyntheticConfig{Tasks: 6, OpsPerTask: 5, EvalsPerOp: 100, SwitchProb: 0.5, Seed: 9}
	a := Synthetic(cfg)
	b := Synthetic(cfg)
	for i := range a.Tasks {
		if a.Tasks[i].Arrival != b.Tasks[i].Arrival || len(a.Tasks[i].Program) != len(b.Tasks[i].Program) {
			t.Fatal("not deterministic")
		}
		for j := range a.Tasks[i].Program {
			if a.Tasks[i].Program[j].Req.Circuit != b.Tasks[i].Program[j].Req.Circuit {
				t.Fatal("circuit choice not deterministic")
			}
		}
	}
}

func TestSyntheticSequentialOpsUseCycles(t *testing.T) {
	set := Synthetic(SyntheticConfig{Tasks: 8, OpsPerTask: 6, EvalsPerOp: 10, SwitchProb: 1, Seed: 4})
	byName := map[string]*netlist.Netlist{}
	for _, c := range set.Circuits {
		byName[c.Name] = c
	}
	for _, ts := range set.Tasks {
		for _, op := range ts.Program {
			if op.Kind != hostos.OpFPGA {
				continue
			}
			c := byName[op.Req.Circuit]
			if c.IsSequential() && op.Req.Cycles == 0 {
				t.Fatalf("sequential circuit %s driven with evaluations", c.Name)
			}
			if !c.IsSequential() && op.Req.Evaluations == 0 {
				t.Fatalf("combinational circuit %s driven with cycles", c.Name)
			}
		}
	}
}

func TestPagedReferencesValid(t *testing.T) {
	cfg := PagedConfig{Circuit: netlist.Adder(8), Refs: 50, Pages: 6, WorkSet: 2, Skew: 1.0, Evals: 10, Seed: 5}
	set := Paged(cfg)
	if len(set.Tasks) != 1 {
		t.Fatal("paged set should be one task")
	}
	for _, op := range set.Tasks[0].Program {
		if len(op.Req.Pages) == 0 || len(op.Req.Pages) > cfg.WorkSet {
			t.Fatalf("working set size %d", len(op.Req.Pages))
		}
		seen := map[int]bool{}
		for _, p := range op.Req.Pages {
			if p < 0 || p >= cfg.Pages {
				t.Fatalf("page %d out of range", p)
			}
			if seen[p] {
				t.Fatal("duplicate page in working set")
			}
			seen[p] = true
		}
	}
}

func TestPagedSkewConcentrates(t *testing.T) {
	cfg := PagedConfig{Circuit: netlist.Adder(8), Refs: 400, Pages: 10, WorkSet: 1, Skew: 1.5, Evals: 1, Seed: 6}
	set := Paged(cfg)
	counts := map[int]int{}
	for _, op := range set.Tasks[0].Program {
		counts[op.Req.Pages[0]]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount < 100 {
		t.Fatalf("zipf skew too flat: hottest page %d/400 refs", maxCount)
	}
}

func TestCircuitNames(t *testing.T) {
	set := Multimedia(DefaultMultimedia())
	names := set.CircuitNames()
	if len(names) != len(set.Circuits) {
		t.Fatal("name count mismatch")
	}
	for i, n := range names {
		if n != set.Circuits[i].Name {
			t.Fatal("name order mismatch")
		}
	}
}

func TestStorageShape(t *testing.T) {
	cfg := DefaultStorage()
	set := Storage(cfg)
	if len(set.Tasks) != cfg.Requests {
		t.Fatalf("tasks %d", len(set.Tasks))
	}
	writes, reads := 0, 0
	for _, ts := range set.Tasks {
		hw := 0
		for _, op := range ts.Program {
			if op.Kind == hostos.OpFPGA {
				hw++
			}
		}
		if hw >= 2 {
			writes++
		} else if hw >= 1 {
			reads++
		} else {
			t.Fatalf("%s has no hardware ops", ts.Name)
		}
	}
	if writes == 0 || reads == 0 {
		t.Fatalf("mix degenerate: %d writes, %d reads", writes, reads)
	}
}

func TestStorageDeterministic(t *testing.T) {
	a := Storage(DefaultStorage())
	b := Storage(DefaultStorage())
	for i := range a.Tasks {
		if a.Tasks[i].Arrival != b.Tasks[i].Arrival || len(a.Tasks[i].Program) != len(b.Tasks[i].Program) {
			t.Fatal("storage workload not deterministic")
		}
	}
}
