package workload

import (
	"errors"
	"testing"
)

// An empty generated set must be rejected with the typed error — the
// overlay and merged managers index the circuit list at construction, so
// this is the guard that keeps them panic-free.
func TestValidateSetEmpty(t *testing.T) {
	err := validateSet(&Set{}, "synthetic")
	if err == nil {
		t.Fatal("validateSet accepted an empty set")
	}
	if !errors.Is(err, ErrNoCircuits) {
		t.Fatalf("error %v is not ErrNoCircuits", err)
	}
}

// Every built-in scenario must build a set with at least one circuit, so
// Build never trips the guard on shipped generators.
func TestBuiltinSpecsBuildCircuits(t *testing.T) {
	for _, spec := range BuiltinSpecs() {
		spec := spec
		t.Run(spec.Scenario, func(t *testing.T) {
			set, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			if len(set.Circuits) == 0 {
				t.Fatal("built-in scenario generated no circuits")
			}
			if err := validateSet(set, spec.Scenario); err != nil {
				t.Fatalf("validateSet rejected a built-in set: %v", err)
			}
		})
	}
}
