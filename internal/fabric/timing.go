package fabric

import "repro/internal/sim"

// Timing models the configuration port and logic timing of the device.
//
// The defaults are calibrated to the paper's reference device: the paper
// states that "in the Xilinx X4000 FPGAs, the configuration can be
// downloaded only serially and completely in no more than 200 ms". An
// XC4013 (24x24 CLBs) holds ~248 Kbit of configuration; at the default
// serial rate of 1.25 Mbit/s a full download of the DefaultGeometry
// device takes ~198 ms.
type Timing struct {
	// SerialRateBits is the configuration port bandwidth in bits/second.
	SerialRateBits int64
	// BitsPerCell is the configuration RAM cost of one CLB tile (LUT,
	// input selection, routing switches).
	BitsPerCell int64
	// BitsPerPin is the configuration RAM cost of one I/O block.
	BitsPerPin int64
	// StateBitsPerFF is the readback/restore cost per flip-flop when only
	// state (not configuration) is transferred.
	StateBitsPerFF int64
	// FullOverhead is the fixed cost of a full reconfiguration (device
	// reset, preamble, startup sequence).
	FullOverhead sim.Time
	// PartialOverhead is the fixed per-operation cost of a partial
	// reconfiguration or readback (addressing, handshake).
	PartialOverhead sim.Time
	// PartialReconfig reports whether the device supports partial
	// reconfiguration at all. When false (the plain XC4000 case), every
	// load is a full-device reconfiguration — the regime in which the
	// paper notes programmability "is restricted in the practice to
	// initial configuration or occasional reconfiguration".
	PartialReconfig bool
	// LUTDelay is the propagation delay through one CLB.
	LUTDelay sim.Time
	// HopDelay is the routing delay per tile-to-tile hop.
	HopDelay sim.Time
	// MinClock is the floor on the clock period regardless of logic depth.
	MinClock sim.Time
}

// DefaultTiming returns the XC4000-calibrated timing model with partial
// reconfiguration enabled (the paper restricts VFPGA to RAM-based families
// and notes some Xilinx families are partially reconfigurable).
func DefaultTiming() Timing {
	return Timing{
		SerialRateBits:  1_250_000,
		BitsPerCell:     430,
		BitsPerPin:      20,
		StateBitsPerFF:  4,
		FullOverhead:    2 * sim.Millisecond,
		PartialOverhead: 50 * sim.Microsecond,
		PartialReconfig: true,
		LUTDelay:        3 * sim.Nanosecond,
		HopDelay:        1 * sim.Nanosecond,
		MinClock:        20 * sim.Nanosecond,
	}
}

// bitsTime converts a bit count to transfer time at the serial rate.
func (t Timing) bitsTime(bits int64) sim.Time {
	return sim.Time(bits * int64(sim.Second) / t.SerialRateBits)
}

// ConfigBits returns the total configuration RAM size for a geometry.
func (t Timing) ConfigBits(g Geometry) int64 {
	return int64(g.NumCLBs())*t.BitsPerCell + int64(g.NumPins())*t.BitsPerPin
}

// FullConfigTime returns the duration of a complete device configuration.
func (t Timing) FullConfigTime(g Geometry) sim.Time {
	return t.FullOverhead + t.bitsTime(t.ConfigBits(g))
}

// PartialConfigTime returns the duration of writing cells CLB tiles and
// pins I/O blocks through the partial-reconfiguration port.
func (t Timing) PartialConfigTime(cells, pins int) sim.Time {
	return t.PartialOverhead + t.bitsTime(int64(cells)*t.BitsPerCell+int64(pins)*t.BitsPerPin)
}

// ReadbackTime returns the duration of reading back ffs flip-flop values.
func (t Timing) ReadbackTime(ffs int) sim.Time {
	return t.PartialOverhead + t.bitsTime(int64(ffs)*t.StateBitsPerFF)
}

// RestoreTime returns the duration of writing ffs flip-flop values through
// the controllability path.
func (t Timing) RestoreTime(ffs int) sim.Time {
	return t.PartialOverhead + t.bitsTime(int64(ffs)*t.StateBitsPerFF)
}

// ClockPeriod returns the operating clock period for a circuit whose
// critical path is critPath.
func (t Timing) ClockPeriod(critPath sim.Time) sim.Time {
	if critPath < t.MinClock {
		return t.MinClock
	}
	return critPath
}
