package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestGeometry(t *testing.T) {
	g := DefaultGeometry()
	if !g.Valid() {
		t.Fatal("default geometry invalid")
	}
	if g.NumCLBs() != 576 {
		t.Fatalf("default CLBs = %d, want 576", g.NumCLBs())
	}
	if g.NumPins() != 192 {
		t.Fatalf("default pins = %d, want 192", g.NumPins())
	}
	if g.String() != "24x24/192pin" {
		t.Fatalf("geometry string = %q", g.String())
	}
	if (Geometry{}).Valid() {
		t.Fatal("zero geometry reported valid")
	}
}

func TestRegionPredicates(t *testing.T) {
	r := Region{X: 2, Y: 3, W: 4, H: 5}
	if r.Cells() != 20 {
		t.Fatalf("cells = %d", r.Cells())
	}
	if !r.Contains(2, 3) || !r.Contains(5, 7) {
		t.Fatal("corner containment failed")
	}
	if r.Contains(6, 3) || r.Contains(2, 8) || r.Contains(1, 3) {
		t.Fatal("exterior containment")
	}
	if !r.Overlaps(Region{X: 5, Y: 7, W: 10, H: 10}) {
		t.Fatal("overlap at corner missed")
	}
	if r.Overlaps(Region{X: 6, Y: 3, W: 2, H: 2}) {
		t.Fatal("adjacent regions reported overlapping")
	}
	if !r.ContainsRegion(Region{X: 3, Y: 4, W: 2, H: 2}) {
		t.Fatal("nested region not contained")
	}
	if r.ContainsRegion(Region{X: 3, Y: 4, W: 4, H: 2}) {
		t.Fatal("protruding region contained")
	}
	if !r.Fits(4, 5) || r.Fits(5, 5) {
		t.Fatal("Fits wrong")
	}
	if (Region{}).Overlaps(r) {
		t.Fatal("empty region overlaps")
	}
}

func TestRegionSplit(t *testing.T) {
	r := Region{X: 0, Y: 0, W: 10, H: 6}
	l, rr := r.SplitH(4)
	if l != (Region{0, 0, 4, 6}) || rr != (Region{4, 0, 6, 6}) {
		t.Fatalf("SplitH wrong: %v %v", l, rr)
	}
	b, tt := r.SplitV(2)
	if b != (Region{0, 0, 10, 2}) || tt != (Region{0, 2, 10, 4}) {
		t.Fatalf("SplitV wrong: %v %v", b, tt)
	}
}

func TestRegionSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range split did not panic")
		}
	}()
	Region{W: 4, H: 4}.SplitH(5)
}

func TestRegionOverlapSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by uint8, aw, ah, bw, bh uint8) bool {
		a := Region{int(ax % 30), int(ay % 30), int(aw%10) + 1, int(ah%10) + 1}
		b := Region{int(bx % 30), int(by % 30), int(bw%10) + 1, int(bh%10) + 1}
		if a.Overlaps(b) != b.Overlaps(a) {
			return false
		}
		// Overlap iff some cell is in both.
		brute := false
		for x := a.X; x < a.X+a.W && !brute; x++ {
			for y := a.Y; y < a.Y+a.H; y++ {
				if b.Contains(x, y) {
					brute = true
					break
				}
			}
		}
		return a.Overlaps(b) == brute
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// configureNot wires pin inPin -> NOT -> pin outPin using the CLB at (x,y).
func configureNot(d *Device, x, y, inPin, outPin int) {
	var lut [16]bool
	for i := 0; i < 16; i++ {
		lut[i] = i&1 == 0 // NOT of input 0
	}
	d.WriteCLB(x, y, CLBConfig{
		Used:   true,
		LUT:    lut,
		Inputs: [4]Source{PinSource(inPin)},
	})
	d.WritePin(inPin, PinConfig{Mode: PinInput})
	d.WritePin(outPin, PinConfig{Mode: PinOutput, Driver: CLBSource(x, y)})
}

func TestDeviceCombinational(t *testing.T) {
	d := NewDevice(Geometry{Cols: 4, Rows: 4, TracksPerChannel: 4, PinsPerSide: 4})
	configureNot(d, 1, 1, 0, 1)
	d.SetPin(0, false)
	out, err := d.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if out[1] != true {
		t.Fatalf("NOT(0) = %v", out[1])
	}
	d.SetPin(0, true)
	out, _ = d.Eval()
	if out[1] != false {
		t.Fatalf("NOT(1) = %v", out[1])
	}
}

func TestDeviceChainedLogic(t *testing.T) {
	// pin0 -> NOT(1,1) -> NOT(2,2) -> pin1 : identity
	d := NewDevice(Geometry{Cols: 4, Rows: 4, TracksPerChannel: 4, PinsPerSide: 4})
	var notLUT [16]bool
	for i := 0; i < 16; i++ {
		notLUT[i] = i&1 == 0
	}
	d.WriteCLB(1, 1, CLBConfig{Used: true, LUT: notLUT, Inputs: [4]Source{PinSource(0)}})
	d.WriteCLB(2, 2, CLBConfig{Used: true, LUT: notLUT, Inputs: [4]Source{CLBSource(1, 1)}})
	d.WritePin(0, PinConfig{Mode: PinInput})
	d.WritePin(1, PinConfig{Mode: PinOutput, Driver: CLBSource(2, 2)})
	for _, v := range []bool{false, true} {
		d.SetPin(0, v)
		out, err := d.Eval()
		if err != nil {
			t.Fatal(err)
		}
		if out[1] != v {
			t.Fatalf("identity(%v) = %v", v, out[1])
		}
	}
}

func TestDeviceSequentialToggle(t *testing.T) {
	// A registered CLB computing NOT of its own output: toggles each Step.
	d := NewDevice(Geometry{Cols: 2, Rows: 2, TracksPerChannel: 4, PinsPerSide: 2})
	var notLUT [16]bool
	for i := 0; i < 16; i++ {
		notLUT[i] = i&1 == 0
	}
	d.WriteCLB(0, 0, CLBConfig{
		Used:   true,
		LUT:    notLUT,
		Inputs: [4]Source{CLBSource(0, 0)},
		UseFF:  true,
	})
	d.WritePin(0, PinConfig{Mode: PinOutput, Driver: CLBSource(0, 0)})
	want := []bool{false, true, false, true}
	for i, w := range want {
		out, err := d.Step()
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != w {
			t.Fatalf("toggle step %d = %v, want %v", i, out[0], w)
		}
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	d := NewDevice(Geometry{Cols: 2, Rows: 2, TracksPerChannel: 4, PinsPerSide: 2})
	id := func() [16]bool {
		var lut [16]bool
		for i := 0; i < 16; i++ {
			lut[i] = i&1 == 1
		}
		return lut
	}()
	d.WriteCLB(0, 0, CLBConfig{Used: true, LUT: id, Inputs: [4]Source{CLBSource(1, 1)}})
	d.WriteCLB(1, 1, CLBConfig{Used: true, LUT: id, Inputs: [4]Source{CLBSource(0, 0)}})
	if _, err := d.Eval(); err == nil {
		t.Fatal("combinational loop not detected")
	}
}

func TestClearRegion(t *testing.T) {
	d := NewDevice(Geometry{Cols: 4, Rows: 4, TracksPerChannel: 4, PinsPerSide: 4})
	configureNot(d, 1, 1, 0, 1)
	if d.UsedCells() != 1 {
		t.Fatalf("used cells = %d", d.UsedCells())
	}
	d.ClearRegion(Region{X: 0, Y: 0, W: 2, H: 2})
	if d.UsedCells() != 0 {
		t.Fatal("region not cleared")
	}
	if d.Pin(1).Mode != PinUnused {
		t.Fatal("output pin driven from cleared region still configured")
	}
	// Input pin config survives (it is not driven by the region).
	if d.Pin(0).Mode != PinInput {
		t.Fatal("input pin config was cleared")
	}
}

func TestStateReadbackRestore(t *testing.T) {
	// Two independent toggles; save state mid-flight, run on, restore.
	d := NewDevice(Geometry{Cols: 4, Rows: 4, TracksPerChannel: 4, PinsPerSide: 4})
	var notLUT [16]bool
	for i := 0; i < 16; i++ {
		notLUT[i] = i&1 == 0
	}
	mk := func(x, y int) {
		d.WriteCLB(x, y, CLBConfig{Used: true, LUT: notLUT, Inputs: [4]Source{CLBSource(x, y)}, UseFF: true})
	}
	mk(0, 0)
	mk(1, 1)
	r := Region{X: 0, Y: 0, W: 2, H: 2}
	if d.RegionFFCount(r) != 2 {
		t.Fatalf("FF count = %d", d.RegionFFCount(r))
	}
	d.Step() // both -> true
	saved := d.ReadRegionState(r)
	d.Step() // both -> false
	d.WriteRegionState(r, saved)
	if !d.FF(0, 0) || !d.FF(1, 1) {
		t.Fatal("state restore failed")
	}
}

func TestWriteRegionStateLengthMismatchPanics(t *testing.T) {
	d := NewDevice(Geometry{Cols: 2, Rows: 2, TracksPerChannel: 4, PinsPerSide: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched state vector did not panic")
		}
	}()
	d.WriteRegionState(Region{W: 2, H: 2}, []bool{true})
}

func TestSetPinOnNonInputPanics(t *testing.T) {
	d := NewDevice(Geometry{Cols: 2, Rows: 2, TracksPerChannel: 4, PinsPerSide: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("SetPin on unused pin did not panic")
		}
	}()
	d.SetPin(0, true)
}

func TestOutOfRangeCLBPanics(t *testing.T) {
	d := NewDevice(Geometry{Cols: 2, Rows: 2, TracksPerChannel: 4, PinsPerSide: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range CLB did not panic")
		}
	}()
	d.CLB(5, 0)
}

func TestLUTEval(t *testing.T) {
	// XOR of inputs 0 and 1.
	var lut [16]bool
	for i := 0; i < 16; i++ {
		lut[i] = (i&1 == 1) != (i&2 == 2)
	}
	cases := []struct {
		in   [4]bool
		want bool
	}{
		{[4]bool{false, false}, false},
		{[4]bool{true, false}, true},
		{[4]bool{false, true}, true},
		{[4]bool{true, true}, false},
	}
	for _, c := range cases {
		if got := lutEval(&lut, c.in); got != c.want {
			t.Fatalf("lutEval(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTimingCalibration(t *testing.T) {
	// The default device must take ~200 ms for a full configuration, the
	// figure the paper quotes for the XC4000 family.
	tm := DefaultTiming()
	g := DefaultGeometry()
	full := tm.FullConfigTime(g)
	if full < 190*sim.Millisecond || full > 210*sim.Millisecond {
		t.Fatalf("full config time = %v, want ~200ms", full)
	}
}

func TestPartialCheaperThanFull(t *testing.T) {
	tm := DefaultTiming()
	g := DefaultGeometry()
	partial := tm.PartialConfigTime(50, 10)
	if partial >= tm.FullConfigTime(g) {
		t.Fatalf("partial(50 cells) = %v not cheaper than full %v", partial, tm.FullConfigTime(g))
	}
}

func TestPartialConfigMonotonic(t *testing.T) {
	tm := DefaultTiming()
	f := func(aRaw, bRaw uint16) bool {
		a, b := int(aRaw%1000), int(bRaw%1000)
		if a > b {
			a, b = b, a
		}
		return tm.PartialConfigTime(a, 0) <= tm.PartialConfigTime(b, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadbackScalesWithFFs(t *testing.T) {
	tm := DefaultTiming()
	if tm.ReadbackTime(100) <= tm.ReadbackTime(10) {
		t.Fatal("readback time not increasing in FF count")
	}
	if tm.RestoreTime(100) <= tm.RestoreTime(10) {
		t.Fatal("restore time not increasing in FF count")
	}
}

func TestClockPeriodFloor(t *testing.T) {
	tm := DefaultTiming()
	if tm.ClockPeriod(1) != tm.MinClock {
		t.Fatal("clock floor not applied")
	}
	if tm.ClockPeriod(100*sim.Nanosecond) != 100*sim.Nanosecond {
		t.Fatal("clock period should track critical path")
	}
}

func TestConfigWritesAccounting(t *testing.T) {
	d := NewDevice(Geometry{Cols: 3, Rows: 3, TracksPerChannel: 4, PinsPerSide: 2})
	configureNot(d, 0, 0, 0, 1)
	if d.ConfigWrites() != 1 {
		t.Fatalf("config writes = %d, want 1", d.ConfigWrites())
	}
	d.ClearRegion(d.Geometry().Bounds())
	if d.ConfigWrites() != 10 {
		t.Fatalf("config writes after clear = %d, want 10", d.ConfigWrites())
	}
}
