package fabric

import (
	"fmt"

	"repro/internal/sim"
)

// Snapshot is a complete image of a device: configuration RAM, live
// flip-flop state, pin configuration and latched input values. It backs
// the paper's §2 outlook that "the whole system operation can be
// virtualized and downloaded at the beginning of the activities" — and
// its converse, hibernating or migrating a running system between
// identical boards.
type Snapshot struct {
	Geom Geometry
	CLBs []CLBConfig
	FFs  []bool
	Pins []PinConfig
	PinV []bool
}

// Snapshot captures the full device image.
func (d *Device) Snapshot() *Snapshot {
	return &Snapshot{
		Geom: d.geom,
		CLBs: append([]CLBConfig(nil), d.clbs...),
		FFs:  append([]bool(nil), d.ffs...),
		Pins: append([]PinConfig(nil), d.pins...),
		PinV: append([]bool(nil), d.pinV...),
	}
}

// Restore overwrites the device with a snapshot taken from a device of
// identical geometry. Configuration-write accounting advances by the full
// cell count (a restore is a full-device download plus state injection).
func (d *Device) Restore(s *Snapshot) error {
	if s.Geom != d.geom {
		return fmt.Errorf("fabric: snapshot geometry %v does not match device %v", s.Geom, d.geom)
	}
	copy(d.clbs, s.CLBs)
	copy(d.ffs, s.FFs)
	copy(d.pins, s.Pins)
	copy(d.pinV, s.PinV)
	d.configWrites += int64(len(d.clbs))
	return nil
}

// MigrationCost returns the virtual time to capture and re-download a
// whole-device image: a full state readback plus a full configuration
// with state injection.
func (t Timing) MigrationCost(g Geometry, liveFFs int) (capture, restore sim.Time) {
	return t.ReadbackTime(liveFFs), t.FullConfigTime(g) + t.RestoreTime(liveFFs)
}
