package fabric

import "testing"

// buildToggle configures a registered NOT-feedback CLB at (x, y).
func buildToggle(d *Device, x, y int) {
	var notLUT [16]bool
	for i := 0; i < 16; i++ {
		notLUT[i] = i&1 == 0
	}
	d.WriteCLB(x, y, CLBConfig{Used: true, LUT: notLUT, Inputs: [4]Source{CLBSource(x, y)}, UseFF: true})
}

func TestSnapshotRestoreMigratesRunningSystem(t *testing.T) {
	g := Geometry{Cols: 4, Rows: 4, TracksPerChannel: 4, PinsPerSide: 4}
	a := NewDevice(g)
	buildToggle(a, 0, 0)
	buildToggle(a, 2, 3)
	a.WritePin(0, PinConfig{Mode: PinOutput, Driver: CLBSource(0, 0)})
	a.WritePin(1, PinConfig{Mode: PinInput})
	a.SetPin(1, true)

	// Run 3 steps: toggles at "true, false, true" -> state true.
	for i := 0; i < 3; i++ {
		if _, err := a.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := a.Snapshot()

	// Migrate to a fresh board and continue; both devices must agree on
	// every subsequent step.
	b := NewDevice(g)
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		oa, err := a.Step()
		if err != nil {
			t.Fatal(err)
		}
		ob, err := b.Step()
		if err != nil {
			t.Fatal(err)
		}
		if oa[0] != ob[0] {
			t.Fatalf("step %d: migrated device diverged", i)
		}
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	g := Geometry{Cols: 2, Rows: 2, TracksPerChannel: 4, PinsPerSide: 2}
	d := NewDevice(g)
	buildToggle(d, 0, 0)
	snap := d.Snapshot()
	// Mutate the live device; the snapshot must not change.
	d.Step()
	d.ClearRegion(g.Bounds())
	if !snap.CLBs[0].Used {
		t.Fatal("snapshot shares storage with the device")
	}
	b := NewDevice(g)
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !b.CLB(0, 0).Used {
		t.Fatal("restore lost configuration")
	}
}

func TestRestoreRejectsGeometryMismatch(t *testing.T) {
	a := NewDevice(Geometry{Cols: 2, Rows: 2, TracksPerChannel: 4, PinsPerSide: 2})
	b := NewDevice(Geometry{Cols: 3, Rows: 2, TracksPerChannel: 4, PinsPerSide: 2})
	if err := b.Restore(a.Snapshot()); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestMigrationCostPositive(t *testing.T) {
	tm := DefaultTiming()
	capture, restore := tm.MigrationCost(DefaultGeometry(), 100)
	if capture <= 0 || restore <= 0 {
		t.Fatal("non-positive migration costs")
	}
	if restore <= tm.FullConfigTime(DefaultGeometry()) {
		t.Fatal("restore must include state injection on top of the full download")
	}
}

func TestRestoreAccountsConfigWrites(t *testing.T) {
	g := Geometry{Cols: 3, Rows: 3, TracksPerChannel: 4, PinsPerSide: 2}
	a := NewDevice(g)
	snap := a.Snapshot()
	b := NewDevice(g)
	before := b.ConfigWrites()
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if b.ConfigWrites() != before+int64(g.NumCLBs()) {
		t.Fatalf("restore accounted %d writes", b.ConfigWrites()-before)
	}
}
