package fabric

import (
	"fmt"
	"sort"
)

// SourceKind enumerates where a configured signal comes from.
type SourceKind uint8

// Signal source kinds.
const (
	SrcUnused SourceKind = iota // pin not connected
	SrcCLB                      // output of the CLB at (X, Y)
	SrcPin                      // device input pin Pin
	SrcConst0
	SrcConst1
)

// Source identifies the driver of a CLB input or an output pin.
type Source struct {
	Kind SourceKind
	X, Y int // CLB coordinates when Kind == SrcCLB
	Pin  int // pin index when Kind == SrcPin
}

// CLBSource returns a Source reading the CLB output at (x, y).
func CLBSource(x, y int) Source { return Source{Kind: SrcCLB, X: x, Y: y} }

// PinSource returns a Source reading device input pin p.
func PinSource(p int) Source { return Source{Kind: SrcPin, Pin: p} }

// ConstSource returns a constant Source.
func ConstSource(v bool) Source {
	if v {
		return Source{Kind: SrcConst1}
	}
	return Source{Kind: SrcConst0}
}

// LUTInputs is the number of LUT inputs per CLB (a 4-LUT, as in XC4000).
const LUTInputs = 4

// CLBConfig is the configuration of one logic block: a 4-input LUT truth
// table, the input routing selection, and the optional output register.
// The zero value is an unused CLB.
type CLBConfig struct {
	Used   bool
	LUT    [1 << LUTInputs]bool
	Inputs [LUTInputs]Source
	UseFF  bool // when set, the CLB output is the FF; FF.D is the LUT output
	FFInit bool
}

// PinMode configures an I/O block.
type PinMode uint8

// Pin modes.
const (
	PinUnused PinMode = iota
	PinInput          // driven from outside the device
	PinOutput         // drives off-device, sourced from Driver
)

// PinConfig is the configuration of one I/O block.
type PinConfig struct {
	Mode   PinMode
	Driver Source // used when Mode == PinOutput
}

// Device is a configured FPGA: configuration state plus live FF state.
// It is not safe for concurrent use; the simulation is single-threaded by
// design (deterministic virtual time).
type Device struct {
	geom Geometry
	clbs []CLBConfig // Cols*Rows, x-major: index = x*Rows + y
	ffs  []bool      // live FF values, parallel to clbs
	pins []PinConfig
	pinV []bool // live input pin values, latched by SetPin

	configWrites int64 // cells written since power-up (for tests/metrics)
}

// NewDevice returns a blank device with the given geometry.
func NewDevice(geom Geometry) *Device {
	if !geom.Valid() {
		panic(fmt.Sprintf("fabric: invalid geometry %+v", geom))
	}
	return &Device{
		geom: geom,
		clbs: make([]CLBConfig, geom.NumCLBs()),
		ffs:  make([]bool, geom.NumCLBs()),
		pins: make([]PinConfig, geom.NumPins()),
		pinV: make([]bool, geom.NumPins()),
	}
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geom }

// ConfigWrites returns the number of CLB cell writes since power-up.
func (d *Device) ConfigWrites() int64 { return d.configWrites }

func (d *Device) idx(x, y int) int {
	if x < 0 || x >= d.geom.Cols || y < 0 || y >= d.geom.Rows {
		panic(fmt.Sprintf("fabric: CLB (%d,%d) outside %v", x, y, d.geom))
	}
	return x*d.geom.Rows + y
}

// CLB returns the configuration of the CLB at (x, y).
func (d *Device) CLB(x, y int) CLBConfig { return d.clbs[d.idx(x, y)] }

// WriteCLB writes the configuration of one CLB and resets its FF to the
// configured init value. This is the raw configuration-RAM write; the time
// it takes is accounted by Timing, not here.
func (d *Device) WriteCLB(x, y int, cfg CLBConfig) {
	i := d.idx(x, y)
	d.clbs[i] = cfg
	d.ffs[i] = cfg.FFInit
	d.configWrites++
}

// ClearRegion erases every CLB in the region and disconnects any output
// pin whose driver lived in the region.
func (d *Device) ClearRegion(r Region) {
	for x := r.X; x < r.X+r.W; x++ {
		for y := r.Y; y < r.Y+r.H; y++ {
			i := d.idx(x, y)
			d.clbs[i] = CLBConfig{}
			d.ffs[i] = false
			d.configWrites++
		}
	}
	for p := range d.pins {
		cfg := &d.pins[p]
		if cfg.Mode == PinOutput && cfg.Driver.Kind == SrcCLB && r.Contains(cfg.Driver.X, cfg.Driver.Y) {
			*cfg = PinConfig{}
		}
	}
}

// Pin returns the configuration of I/O block p.
func (d *Device) Pin(p int) PinConfig { return d.pins[p] }

// WritePin configures I/O block p.
func (d *Device) WritePin(p int, cfg PinConfig) {
	if p < 0 || p >= len(d.pins) {
		panic(fmt.Sprintf("fabric: pin %d outside %v", p, d.geom))
	}
	d.pins[p] = cfg
}

// SetPin latches the external value driven into input pin p.
func (d *Device) SetPin(p int, v bool) {
	if d.pins[p].Mode != PinInput {
		panic(fmt.Sprintf("fabric: SetPin on pin %d which is not an input", p))
	}
	d.pinV[p] = v
}

// FF returns the live flip-flop value of the CLB at (x, y).
func (d *Device) FF(x, y int) bool { return d.ffs[d.idx(x, y)] }

// SetFF overwrites the live flip-flop value of the CLB at (x, y). This is
// the "controllability" path used for state restore.
func (d *Device) SetFF(x, y int, v bool) { d.ffs[d.idx(x, y)] = v }

// ReadRegionState returns the FF values of every registered CLB in the
// region, in x-major scan order. This is the readback path the paper's
// "observability" requirement describes.
func (d *Device) ReadRegionState(r Region) []bool {
	var state []bool
	for x := r.X; x < r.X+r.W; x++ {
		for y := r.Y; y < r.Y+r.H; y++ {
			if c := d.clbs[d.idx(x, y)]; c.Used && c.UseFF {
				state = append(state, d.ffs[d.idx(x, y)])
			}
		}
	}
	return state
}

// WriteRegionState restores FF values saved by ReadRegionState. It panics
// if the vector length does not match the number of registered CLBs in
// the region (which would indicate restoring onto the wrong circuit).
func (d *Device) WriteRegionState(r Region, state []bool) {
	k := 0
	for x := r.X; x < r.X+r.W; x++ {
		for y := r.Y; y < r.Y+r.H; y++ {
			if c := d.clbs[d.idx(x, y)]; c.Used && c.UseFF {
				if k >= len(state) {
					panic("fabric: WriteRegionState vector too short")
				}
				d.ffs[d.idx(x, y)] = state[k]
				k++
			}
		}
	}
	if k != len(state) {
		panic(fmt.Sprintf("fabric: WriteRegionState vector has %d values for %d FFs", len(state), k))
	}
}

// RegionFFCount returns the number of registered CLBs in the region.
func (d *Device) RegionFFCount(r Region) int {
	n := 0
	for x := r.X; x < r.X+r.W; x++ {
		for y := r.Y; y < r.Y+r.H; y++ {
			if c := d.clbs[d.idx(x, y)]; c.Used && c.UseFF {
				n++
			}
		}
	}
	return n
}

// UsedCells returns the number of configured CLBs on the whole device.
func (d *Device) UsedCells() int {
	n := 0
	for i := range d.clbs {
		if d.clbs[i].Used {
			n++
		}
	}
	return n
}

// EachUsedCLB calls f for every configured CLB in x-major scan order.
// This is the read path the static verifier uses to audit a configured
// device without reaching into the configuration RAM layout.
func (d *Device) EachUsedCLB(f func(x, y int, cfg CLBConfig)) {
	for x := 0; x < d.geom.Cols; x++ {
		for y := 0; y < d.geom.Rows; y++ {
			if c := d.clbs[d.idx(x, y)]; c.Used {
				f(x, y, c)
			}
		}
	}
}

// resolve returns the current value of a source given the per-CLB output
// values computed so far.
func (d *Device) resolve(s Source, outs []bool) bool {
	switch s.Kind {
	case SrcUnused, SrcConst0:
		return false
	case SrcConst1:
		return true
	case SrcPin:
		return d.pinV[s.Pin]
	case SrcCLB:
		return outs[d.idx(s.X, s.Y)]
	}
	panic(fmt.Sprintf("fabric: bad source kind %d", s.Kind))
}

// lutEval evaluates a CLB's LUT on the given input values.
func lutEval(lut *[1 << LUTInputs]bool, in [LUTInputs]bool) bool {
	idx := 0
	for i, b := range in {
		if b {
			idx |= 1 << uint(i)
		}
	}
	return lut[idx]
}

// combOrder returns a topological order of the used CLBs over their
// combinational dependencies. A registered CLB's output is its FF, so it
// contributes no combinational dependency on its inputs. An error is
// returned if the configuration contains a combinational loop.
func (d *Device) combOrder() ([]int, error) {
	used := make([]int, 0, len(d.clbs))
	for i := range d.clbs {
		if d.clbs[i].Used {
			used = append(used, i)
		}
	}
	indeg := make(map[int]int, len(used))
	succ := make(map[int][]int, len(used))
	for _, i := range used {
		cfg := &d.clbs[i]
		for _, src := range cfg.Inputs {
			if src.Kind != SrcCLB {
				continue
			}
			j := d.idx(src.X, src.Y)
			if d.clbs[j].UseFF {
				continue // sequential edge, not combinational
			}
			indeg[i]++
			succ[j] = append(succ[j], i)
		}
	}
	queue := make([]int, 0, len(used))
	for _, i := range used {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	sort.Ints(queue) // determinism
	order := make([]int, 0, len(used))
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, s := range succ[i] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(used) {
		return nil, fmt.Errorf("fabric: configured logic contains a combinational loop (%d of %d CLBs ordered)", len(order), len(used))
	}
	return order, nil
}

// propagate computes all CLB outputs and the LUT (pre-register) values.
func (d *Device) propagate() (outs, lutOuts []bool, err error) {
	order, err := d.combOrder()
	if err != nil {
		return nil, nil, err
	}
	outs = make([]bool, len(d.clbs))
	lutOuts = make([]bool, len(d.clbs))
	// Registered CLB outputs are their FF values, available before any
	// combinational evaluation.
	for i := range d.clbs {
		if d.clbs[i].Used && d.clbs[i].UseFF {
			outs[i] = d.ffs[i]
		}
	}
	for _, i := range order {
		cfg := &d.clbs[i]
		var in [LUTInputs]bool
		for k, src := range cfg.Inputs {
			in[k] = d.resolve(src, outs)
		}
		lutOuts[i] = lutEval(&cfg.LUT, in)
		if !cfg.UseFF {
			outs[i] = lutOuts[i]
		}
	}
	return outs, lutOuts, nil
}

// outputPins collects the values on all configured output pins.
func (d *Device) outputPins(outs []bool) map[int]bool {
	res := make(map[int]bool)
	for p := range d.pins {
		if d.pins[p].Mode == PinOutput {
			res[p] = d.resolve(d.pins[p].Driver, outs)
		}
	}
	return res
}

// Eval propagates the current input pin values through the configured
// fabric combinationally (FF outputs hold) and returns the values on all
// output pins.
func (d *Device) Eval() (map[int]bool, error) {
	outs, _, err := d.propagate()
	if err != nil {
		return nil, err
	}
	return d.outputPins(outs), nil
}

// Step performs one global clock cycle: it propagates values, samples the
// output pins (pre-edge), then latches every registered CLB. All loaded
// circuits on the device share the clock, as on a real single-clock FPGA.
func (d *Device) Step() (map[int]bool, error) {
	outs, lutOuts, err := d.propagate()
	if err != nil {
		return nil, err
	}
	res := d.outputPins(outs)
	for i := range d.clbs {
		if d.clbs[i].Used && d.clbs[i].UseFF {
			d.ffs[i] = lutOuts[i]
		}
	}
	return res, nil
}
