// Package fabric models a symmetrical-array FPGA device of the class the
// paper targets (Xilinx XC4000-like): a rectangular array of configurable
// logic blocks (CLBs), each a 4-input LUT with an optional D flip-flop,
// perimeter I/O blocks, and a configuration RAM written through a serial
// configuration port.
//
// The device executes whatever is configured into it: functional
// evaluation reconstructs the logic graph from the CLB configurations and
// propagates values, independent of the netlist the bitstream came from.
// This is what lets the tests prove that a compiled, placed, routed and
// relocated circuit still computes the original function.
package fabric

import "fmt"

// Geometry describes the physical dimensions of a device.
type Geometry struct {
	Cols, Rows int // CLB array size
	// TracksPerChannel is the routing capacity between adjacent tiles; the
	// router refuses placements whose congestion exceeds it.
	TracksPerChannel int
	// PinsPerSide is the number of I/O blocks on each device edge.
	PinsPerSide int
}

// DefaultGeometry models an XC4013-class device: a 24x24 CLB array
// (576 CLBs) with 192 user pins. The paper cites devices "up to 250K
// gates ... with some hundreds of input and output pins".
func DefaultGeometry() Geometry {
	return Geometry{Cols: 24, Rows: 24, TracksPerChannel: 12, PinsPerSide: 48}
}

// NumCLBs returns the total CLB count.
func (g Geometry) NumCLBs() int { return g.Cols * g.Rows }

// NumPins returns the total I/O pin count.
func (g Geometry) NumPins() int { return 4 * g.PinsPerSide }

// Valid reports whether the geometry is usable.
func (g Geometry) Valid() bool {
	return g.Cols > 0 && g.Rows > 0 && g.TracksPerChannel > 0 && g.PinsPerSide > 0
}

// Bounds returns the full-device region.
func (g Geometry) Bounds() Region { return Region{X: 0, Y: 0, W: g.Cols, H: g.Rows} }

// String renders the geometry as "24x24/192pin".
func (g Geometry) String() string {
	return fmt.Sprintf("%dx%d/%dpin", g.Cols, g.Rows, g.NumPins())
}

// Region is a rectangle of CLBs: the unit of partitioning, relocation and
// partial reconfiguration.
type Region struct {
	X, Y, W, H int
}

// Cells returns the number of CLBs in the region.
func (r Region) Cells() int { return r.W * r.H }

// Empty reports whether the region contains no cells.
func (r Region) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Contains reports whether the CLB at (x, y) lies inside the region.
func (r Region) Contains(x, y int) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}

// ContainsRegion reports whether s lies entirely inside r.
func (r Region) ContainsRegion(s Region) bool {
	if s.Empty() {
		return true
	}
	return s.X >= r.X && s.Y >= r.Y && s.X+s.W <= r.X+r.W && s.Y+s.H <= r.Y+r.H
}

// Overlaps reports whether the two regions share any cell.
func (r Region) Overlaps(s Region) bool {
	if r.Empty() || s.Empty() {
		return false
	}
	return r.X < s.X+s.W && s.X < r.X+r.W && r.Y < s.Y+s.H && s.Y < r.Y+r.H
}

// Fits reports whether a w x h rectangle fits inside the region.
func (r Region) Fits(w, h int) bool { return w <= r.W && h <= r.H }

// String renders the region as "(x,y)+WxH".
func (r Region) String() string {
	return fmt.Sprintf("(%d,%d)+%dx%d", r.X, r.Y, r.W, r.H)
}

// SplitH splits the region horizontally, returning the left part with
// width w and the remainder. It panics if w is out of range.
func (r Region) SplitH(w int) (left, right Region) {
	if w <= 0 || w > r.W {
		panic(fmt.Sprintf("fabric: SplitH(%d) of %v", w, r))
	}
	left = Region{X: r.X, Y: r.Y, W: w, H: r.H}
	right = Region{X: r.X + w, Y: r.Y, W: r.W - w, H: r.H}
	return left, right
}

// SplitV splits the region vertically, returning the bottom part with
// height h and the remainder. It panics if h is out of range.
func (r Region) SplitV(h int) (bottom, top Region) {
	if h <= 0 || h > r.H {
		panic(fmt.Sprintf("fabric: SplitV(%d) of %v", h, r))
	}
	bottom = Region{X: r.X, Y: r.Y, W: r.W, H: h}
	top = Region{X: r.X, Y: r.Y + h, W: r.W, H: r.H - h}
	return bottom, top
}
