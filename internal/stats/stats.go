// Package stats provides the measurement primitives used by the VFPGA
// experiments: counters, sample accumulators, time-weighted averages (for
// quantities like "fraction of CLBs in use"), and fixed-bucket histograms.
//
// All statistics operate on virtual time expressed as int64 nanoseconds,
// matching the simulation kernel; nothing here touches the wall clock.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n int64
}

// Add increments the counter by delta (which must be >= 0).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("stats: Counter.Add with negative delta")
	}
	c.n += delta
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// AtomicCounter is a counter safe for concurrent use, for measurement
// points shared between goroutines (e.g. the compile-cache hit/miss
// counters under the parallel experiment runner). Unlike Counter it also
// admits negative deltas, so it can track level quantities such as the
// number of in-flight operations.
type AtomicCounter struct {
	n atomic.Int64
}

// Inc increments the counter by one.
func (c *AtomicCounter) Inc() { c.n.Add(1) }

// Dec decrements the counter by one.
func (c *AtomicCounter) Dec() { c.n.Add(-1) }

// Add adjusts the counter by delta (which may be negative).
func (c *AtomicCounter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *AtomicCounter) Value() int64 { return c.n.Load() }

// Sample accumulates scalar observations and reports summary statistics.
type Sample struct {
	n      int64
	sum    float64
	sumSq  float64
	min    float64
	max    float64
	values []float64 // retained only when keep is true
	keep   bool
}

// NewSample returns an empty Sample. If keepValues is true the individual
// observations are retained so that quantiles can be computed.
func NewSample(keepValues bool) *Sample {
	return &Sample{min: math.Inf(1), max: math.Inf(-1), keep: keepValues}
}

// Observe records one observation.
func (s *Sample) Observe(v float64) {
	s.n++
	s.sum += v
	s.sumSq += v * v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if s.keep {
		s.values = append(s.values, v)
	}
}

// Count returns the number of observations.
func (s *Sample) Count() int64 { return s.n }

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 if there are no observations.
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Variance returns the population variance, or 0 for fewer than two
// observations.
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 { // numerical noise
		return 0
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 if there are none.
func (s *Sample) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 if there are none.
func (s *Sample) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank on the
// retained values. It panics if the sample was not created with
// keepValues, and returns 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if !s.keep {
		panic("stats: Quantile on Sample without retained values")
	}
	if len(s.values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// TimeWeighted tracks the time-weighted average of a piecewise-constant
// quantity, e.g. the number of busy CLBs. Set must be called with
// non-decreasing timestamps.
type TimeWeighted struct {
	lastT    int64
	lastV    float64
	area     float64
	start    int64
	started  bool
	maxValue float64
}

// Set records that the quantity changed to v at virtual time t (ns).
func (w *TimeWeighted) Set(t int64, v float64) {
	if !w.started {
		w.start, w.lastT, w.lastV, w.started = t, t, v, true
		w.maxValue = v
		return
	}
	if t < w.lastT {
		panic(fmt.Sprintf("stats: TimeWeighted.Set time went backwards: %d < %d", t, w.lastT))
	}
	w.area += w.lastV * float64(t-w.lastT)
	w.lastT, w.lastV = t, v
	if v > w.maxValue {
		w.maxValue = v
	}
}

// Add adjusts the current value by delta at time t.
func (w *TimeWeighted) Add(t int64, delta float64) {
	w.Set(t, w.lastV+delta)
}

// Value returns the current instantaneous value.
func (w *TimeWeighted) Value() float64 { return w.lastV }

// Max returns the maximum value observed so far.
func (w *TimeWeighted) Max() float64 { return w.maxValue }

// Average returns the time-weighted average over [start, t]. If no time
// has elapsed it returns the current value.
func (w *TimeWeighted) Average(t int64) float64 {
	if !w.started || t <= w.start {
		return w.lastV
	}
	area := w.area + w.lastV*float64(t-w.lastT)
	return area / float64(t-w.start)
}

// Histogram is a fixed-bucket histogram over [lo, hi) with out-of-range
// observations clamped into the first/last bucket.
type Histogram struct {
	lo, hi  float64
	buckets []int64
	total   int64
}

// NewHistogram returns a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, n)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	idx := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
	h.total++
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// NumBuckets returns the number of buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// String renders the histogram as a compact ASCII bar chart.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := int64(1)
	for _, c := range h.buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	width := (h.hi - h.lo) / float64(len(h.buckets))
	for i, c := range h.buckets {
		bar := strings.Repeat("#", int(40*c/maxCount))
		fmt.Fprintf(&b, "[%10.3g,%10.3g) %8d %s\n", h.lo+float64(i)*width, h.lo+float64(i+1)*width, c, bar)
	}
	return b.String()
}
