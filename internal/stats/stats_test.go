package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestSampleBasics(t *testing.T) {
	s := NewSample(false)
	for _, v := range []float64{1, 2, 3, 4} {
		s.Observe(v)
	}
	if s.Count() != 4 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Mean() != 2.5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Variance()-1.25) > 1e-12 {
		t.Fatalf("variance = %v, want 1.25", s.Variance())
	}
	if s.Sum() != 10 {
		t.Fatalf("sum = %v", s.Sum())
	}
}

func TestEmptySample(t *testing.T) {
	s := NewSample(true)
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 {
		t.Fatal("empty sample statistics should all be zero")
	}
	if s.Quantile(0.5) != 0 {
		t.Fatal("empty sample quantile should be zero")
	}
}

func TestSampleQuantile(t *testing.T) {
	s := NewSample(true)
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	if got := s.Quantile(0.5); got != 50 {
		t.Fatalf("p50 = %v, want 50", got)
	}
	if got := s.Quantile(0.99); got != 99 {
		t.Fatalf("p99 = %v, want 99", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("p100 = %v, want 100", got)
	}
}

func TestQuantileWithoutRetentionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile without retained values did not panic")
		}
	}()
	s := NewSample(false)
	s.Observe(1)
	s.Quantile(0.5)
}

func TestSampleMeanProperty(t *testing.T) {
	f := func(raw []float64) bool {
		s := NewSample(false)
		sum := 0.0
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				continue
			}
			s.Observe(v)
			sum += v
			n++
		}
		if n == 0 {
			return s.Mean() == 0
		}
		return math.Abs(s.Mean()-sum/float64(n)) < 1e-6*(1+math.Abs(sum))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWeightedAverage(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 10)
	w.Set(100, 20) // 10 for 100ns
	w.Set(300, 0)  // 20 for 200ns
	// average over [0,400]: (10*100 + 20*200 + 0*100)/400 = 12.5
	if got := w.Average(400); got != 12.5 {
		t.Fatalf("average = %v, want 12.5", got)
	}
	if w.Max() != 20 {
		t.Fatalf("max = %v, want 20", w.Max())
	}
	if w.Value() != 0 {
		t.Fatalf("value = %v, want 0", w.Value())
	}
}

func TestTimeWeightedAdd(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 0)
	w.Add(10, 3)
	w.Add(20, -1)
	if w.Value() != 2 {
		t.Fatalf("value = %v, want 2", w.Value())
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	var w TimeWeighted
	w.Set(100, 1)
	w.Set(50, 2)
}

func TestTimeWeightedNoElapsed(t *testing.T) {
	var w TimeWeighted
	w.Set(5, 7)
	if got := w.Average(5); got != 7 {
		t.Fatalf("zero-width average = %v, want current value 7", got)
	}
}

func TestTimeWeightedConstantProperty(t *testing.T) {
	f := func(v float64, span uint16) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300 {
			return true
		}
		var w TimeWeighted
		w.Set(0, v)
		end := int64(span) + 1
		return w.Average(end) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5)
	}
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 1 {
			t.Fatalf("bucket %d = %d, want 1", i, h.Bucket(i))
		}
	}
	if h.Count() != 10 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Observe(-100)
	h.Observe(1e9)
	if h.Bucket(0) != 1 || h.Bucket(4) != 1 {
		t.Fatalf("clamping failed: first=%d last=%d", h.Bucket(0), h.Bucket(4))
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Observe(0.1)
	h.Observe(0.9)
	s := h.String()
	if !strings.Contains(s, "#") || strings.Count(s, "\n") != 2 {
		t.Fatalf("unexpected histogram rendering:\n%s", s)
	}
}

func TestHistogramInvalidShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram shape did not panic")
		}
	}()
	NewHistogram(1, 0, 4)
}

func TestAtomicCounter(t *testing.T) {
	var c AtomicCounter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
			c.Add(10)
			c.Dec()
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1000+8*10-8 {
		t.Fatalf("counter=%d, want %d", got, 8*1000+8*10-8)
	}
}
