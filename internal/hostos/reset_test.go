package hostos

import (
	"testing"

	"repro/internal/sim"
)

// Reset must clear every piece of per-job scheduler state, so a warm
// board respawning the same script reproduces the cold run exactly —
// including task IDs, which restart from zero.
func TestOSReset(t *testing.T) {
	m := newMock()
	o := newOS(Config{Policy: RR, TimeSlice: 300 * sim.Microsecond, CtxSwitch: 10 * sim.Microsecond}, m)
	script := func() {
		for _, name := range []string{"a", "b"} {
			if _, err := o.Spawn(name, 0, []Op{
				Compute(500 * sim.Microsecond),
				UseFPGA(FPGARequest{Circuit: "adder8", Evaluations: 100}),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	script()
	o.K.Run()
	if !o.AllDone() {
		t.Fatal("cold run did not finish")
	}
	coldSpan, coldCtx := o.Makespan(), o.CtxSwitches
	coldIDs := taskIDs(o)

	o.K.Reset()
	o.Reset()
	if len(o.Tasks()) != 0 {
		t.Fatalf("Reset left %d tasks", len(o.Tasks()))
	}
	if o.AllDone() {
		t.Error("AllDone true on an empty OS")
	}
	if o.CtxSwitches != 0 || o.BusyTime != 0 || o.Makespan() != 0 {
		t.Errorf("Reset left counters: ctx=%d busy=%v span=%v", o.CtxSwitches, o.BusyTime, o.Makespan())
	}

	script()
	o.K.Run()
	if !o.AllDone() {
		t.Fatal("warm run did not finish")
	}
	if o.Makespan() != coldSpan || o.CtxSwitches != coldCtx {
		t.Errorf("warm run diverged: span %v ctx %d, cold %v / %d",
			o.Makespan(), o.CtxSwitches, coldSpan, coldCtx)
	}
	if got := taskIDs(o); !equalIDs(got, coldIDs) {
		t.Errorf("warm task IDs %v, cold %v (IDs must restart from zero)", got, coldIDs)
	}
}

func taskIDs(o *OS) []TaskID {
	ids := make([]TaskID, 0, len(o.Tasks()))
	for _, tk := range o.Tasks() {
		ids = append(ids, tk.ID)
	}
	return ids
}

func equalIDs(a, b []TaskID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
