package hostos

import (
	"testing"

	"repro/internal/sim"
)

// mockFPGA is a scriptable FPGA manager for scheduler tests.
type mockFPGA struct {
	os          *OS
	setup       sim.Time
	perEval     sim.Time
	preemptable bool
	saveCost    sim.Time
	resumeCost  sim.Time
	rollback    bool // preserve nothing on preempt

	busyWith  *Task // non-nil models an exclusive resource
	exclusive bool
	waiters   []*Task

	registered map[string]int
	completes  int
	preempts   int
	resumes    int
	removes    int
}

func newMock() *mockFPGA {
	return &mockFPGA{
		perEval:     sim.Microsecond,
		preemptable: true,
		registered:  map[string]int{},
	}
}

func (m *mockFPGA) Register(t *Task, circuit string) error {
	m.registered[circuit]++
	return nil
}

func (m *mockFPGA) Acquire(t *Task) (sim.Time, bool) {
	if m.exclusive {
		if m.busyWith != nil && m.busyWith != t {
			m.waiters = append(m.waiters, t)
			return 0, false
		}
		m.busyWith = t
	}
	return m.setup, true
}

func (m *mockFPGA) ExecTime(t *Task) sim.Time {
	req := t.CurrentRequest()
	n := req.Evaluations + req.Cycles
	return sim.Time(n) * m.perEval
}

func (m *mockFPGA) Preemptable(t *Task) bool { return m.preemptable }

func (m *mockFPGA) Preempt(t *Task, done, total sim.Time) (sim.Time, sim.Time) {
	m.preempts++
	if m.rollback {
		return 0, 0
	}
	return m.saveCost, done
}

func (m *mockFPGA) Resume(t *Task) sim.Time {
	m.resumes++
	return m.resumeCost
}

func (m *mockFPGA) Complete(t *Task) {
	m.completes++
}

// Remove releases the exclusive resource at task exit, matching the
// paper's non-preemptable FPGA: held "until the task holding it has not
// completed the algorithm".
func (m *mockFPGA) Remove(t *Task) {
	m.removes++
	if m.exclusive && m.busyWith == t {
		m.busyWith = nil
		if len(m.waiters) > 0 {
			next := m.waiters[0]
			m.waiters = m.waiters[1:]
			m.busyWith = next
			m.os.Unblock(next)
		}
	}
}

func newOS(cfg Config, m *mockFPGA) *OS {
	k := sim.New()
	o := New(k, cfg, m)
	m.os = o
	return o
}

func TestSingleComputeTask(t *testing.T) {
	m := newMock()
	o := newOS(Config{Policy: FIFO, CtxSwitch: 50 * sim.Microsecond}, m)
	task, err := o.Spawn("a", 0, []Op{Compute(5 * sim.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	o.K.Run()
	if task.State() != TaskDone {
		t.Fatalf("task state %v", task.State())
	}
	if task.CPUTime != 5*sim.Millisecond {
		t.Fatalf("CPU time %v", task.CPUTime)
	}
	if task.Turnaround() != 5*sim.Millisecond+50*sim.Microsecond {
		t.Fatalf("turnaround %v should be burst + ctx switch", task.Turnaround())
	}
}

func TestEmptyProgramRejected(t *testing.T) {
	o := newOS(Config{}, newMock())
	if _, err := o.Spawn("x", 0, nil); err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestFIFORunsToCompletion(t *testing.T) {
	m := newMock()
	o := newOS(Config{Policy: FIFO, CtxSwitch: 0}, m)
	a, _ := o.Spawn("a", 0, []Op{Compute(10 * sim.Millisecond)})
	b, _ := o.Spawn("b", 0, []Op{Compute(1 * sim.Millisecond)})
	o.K.Run()
	// FIFO: a finishes before b starts despite b being shorter.
	if !(a.Finished <= b.FirstRun) {
		t.Fatalf("FIFO violated: a done %v, b first run %v", a.Finished, b.FirstRun)
	}
}

func TestRRInterleaves(t *testing.T) {
	m := newMock()
	o := newOS(Config{Policy: RR, TimeSlice: sim.Millisecond, CtxSwitch: 0}, m)
	a, _ := o.Spawn("a", 0, []Op{Compute(5 * sim.Millisecond)})
	b, _ := o.Spawn("b", 0, []Op{Compute(5 * sim.Millisecond)})
	o.K.Run()
	// Round robin: both finish within one slice of each other.
	gap := a.Finished - b.Finished
	if gap < 0 {
		gap = -gap
	}
	if gap > sim.Millisecond+sim.Microsecond {
		t.Fatalf("RR tasks finished %v apart", gap)
	}
	if a.Preemptions == 0 && b.Preemptions == 0 {
		t.Fatal("no preemptions under RR with long bursts")
	}
}

func TestPriorityPreemption(t *testing.T) {
	m := newMock()
	o := newOS(Config{Policy: Priority, TimeSlice: 100 * sim.Millisecond, CtxSwitch: 0}, m)
	low, _ := o.Spawn("low", 10, []Op{Compute(20 * sim.Millisecond)})
	o.K.Schedule(5*sim.Millisecond, func() {
		if _, err := o.spawnAt(o.K.Now(), "high", 1, []Op{Compute(2 * sim.Millisecond)}, true); err != nil {
			t.Error(err)
		}
	})
	o.K.Run()
	var high *Task
	for _, task := range o.Tasks() {
		if task.Name == "high" {
			high = task
		}
	}
	if high.Finished >= low.Finished {
		t.Fatalf("high finished %v after low %v", high.Finished, low.Finished)
	}
	if high.Finished != 7*sim.Millisecond {
		t.Fatalf("high finished at %v, want 7ms (preempted low immediately)", high.Finished)
	}
}

func TestFPGAOpBasic(t *testing.T) {
	m := newMock()
	m.setup = 2 * sim.Millisecond
	o := newOS(Config{Policy: FIFO, Syscall: 10 * sim.Microsecond, CtxSwitch: 0}, m)
	task, _ := o.Spawn("hw", 0, []Op{UseFPGA(FPGARequest{Circuit: "c", Evaluations: 1000})})
	o.K.Run()
	if task.State() != TaskDone {
		t.Fatalf("state %v", task.State())
	}
	if m.completes != 1 {
		t.Fatalf("completes = %d", m.completes)
	}
	if task.HWTime != 1000*sim.Microsecond {
		t.Fatalf("HW time %v", task.HWTime)
	}
	if task.Overhead < 2*sim.Millisecond {
		t.Fatalf("overhead %v must include setup", task.Overhead)
	}
	if m.registered["c"] != 1 {
		t.Fatal("circuit not registered at spawn")
	}
}

func TestFPGABlockingAndHandoff(t *testing.T) {
	m := newMock()
	m.exclusive = true
	m.preemptable = false
	o := newOS(Config{Policy: RR, TimeSlice: sim.Millisecond, CtxSwitch: 0}, m)
	// a grabs the FPGA and, per the paper's exclusive model, holds it
	// until task exit; b reaches its own FPGA op during a's CPU phase and
	// must wait.
	a, _ := o.Spawn("a", 0, []Op{
		UseFPGA(FPGARequest{Circuit: "c", Evaluations: 5000}),
		Compute(3 * sim.Millisecond),
	})
	b, _ := o.Spawn("b", 0, []Op{
		Compute(100 * sim.Microsecond),
		UseFPGA(FPGARequest{Circuit: "c", Evaluations: 100}),
	})
	o.K.Run()
	if a.State() != TaskDone || b.State() != TaskDone {
		t.Fatalf("states %v %v", a.State(), b.State())
	}
	if b.BlockWait == 0 {
		t.Fatal("b never waited for the exclusive FPGA")
	}
	if b.Finished <= a.Finished {
		t.Fatal("b finished before a released the FPGA")
	}
}

func TestPreemptionSaveRestore(t *testing.T) {
	m := newMock()
	m.saveCost = 100 * sim.Microsecond
	m.resumeCost = 150 * sim.Microsecond
	o := newOS(Config{Policy: RR, TimeSlice: sim.Millisecond, CtxSwitch: 0}, m)
	hw, _ := o.Spawn("hw", 0, []Op{UseFPGA(FPGARequest{Circuit: "c", Evaluations: 3500})})
	cpu, _ := o.Spawn("cpu", 0, []Op{Compute(3 * sim.Millisecond)})
	o.K.Run()
	if hw.State() != TaskDone || cpu.State() != TaskDone {
		t.Fatal("not all done")
	}
	if m.preempts == 0 || m.resumes == 0 {
		t.Fatalf("expected save/restore cycles: %d preempts, %d resumes", m.preempts, m.resumes)
	}
	// With state preserved, total HW time equals the pure exec time.
	if hw.HWTime != 3500*sim.Microsecond {
		t.Fatalf("HW time %v, want 3.5ms exactly (no lost work)", hw.HWTime)
	}
	if hw.Overhead < m.saveCost+m.resumeCost {
		t.Fatalf("overhead %v missing save/restore costs", hw.Overhead)
	}
}

func TestRollbackRedoesWork(t *testing.T) {
	m := newMock()
	m.rollback = true
	o := newOS(Config{Policy: RR, TimeSlice: sim.Millisecond, CtxSwitch: 0}, m)
	// 1.5ms op with 1ms slices and a competing task: first slice loses
	// 1ms of work, so total HW time exceeds the pure 1.5ms.
	hw, _ := o.Spawn("hw", 0, []Op{UseFPGA(FPGARequest{Circuit: "c", Evaluations: 1500})})
	o.Spawn("cpu", 0, []Op{Compute(3 * sim.Millisecond)})
	o.K.Run()
	if hw.State() != TaskDone {
		t.Fatal("hw not done")
	}
	if hw.HWTime <= 1500*sim.Microsecond {
		t.Fatalf("rollback should redo work: HW time %v", hw.HWTime)
	}
}

func TestNonPreemptableRunsThroughSlice(t *testing.T) {
	m := newMock()
	m.preemptable = false
	o := newOS(Config{Policy: RR, TimeSlice: sim.Millisecond, CtxSwitch: 0}, m)
	hw, _ := o.Spawn("hw", 0, []Op{UseFPGA(FPGARequest{Circuit: "c", Evaluations: 5000})})
	o.Spawn("cpu", 0, []Op{Compute(1 * sim.Millisecond)})
	o.K.Run()
	if hw.Preemptions != 0 {
		t.Fatalf("non-preemptable op preempted %d times", hw.Preemptions)
	}
	if m.preempts != 0 {
		t.Fatal("manager.Preempt called for non-preemptable op")
	}
}

func TestMixedProgram(t *testing.T) {
	m := newMock()
	o := newOS(DefaultConfig(), m)
	task, _ := o.Spawn("mix", 0, []Op{
		Compute(2 * sim.Millisecond),
		UseFPGA(FPGARequest{Circuit: "a", Evaluations: 500}),
		Compute(1 * sim.Millisecond),
		UseFPGA(FPGARequest{Circuit: "b", Cycles: 200}),
	})
	o.K.Run()
	if task.State() != TaskDone {
		t.Fatalf("state %v", task.State())
	}
	if task.CPUTime != 3*sim.Millisecond {
		t.Fatalf("CPU %v", task.CPUTime)
	}
	if task.HWTime != 700*sim.Microsecond {
		t.Fatalf("HW %v", task.HWTime)
	}
	if m.completes != 2 || len(m.registered) != 2 {
		t.Fatalf("completes %d, registered %v", m.completes, m.registered)
	}
}

func TestSpawnAtDelaysArrival(t *testing.T) {
	m := newMock()
	o := newOS(Config{Policy: FIFO, CtxSwitch: 0}, m)
	o.SpawnAt(10*sim.Millisecond, "late", 0, []Op{Compute(sim.Millisecond)})
	o.K.Run()
	task := o.Tasks()[0]
	if task.Created != 10*sim.Millisecond {
		t.Fatalf("created %v", task.Created)
	}
	if task.Finished != 11*sim.Millisecond {
		t.Fatalf("finished %v", task.Finished)
	}
}

func TestMakespanAndAllDone(t *testing.T) {
	m := newMock()
	o := newOS(Config{Policy: FIFO, CtxSwitch: 0}, m)
	if o.AllDone() {
		t.Fatal("empty OS reports all done")
	}
	o.Spawn("a", 0, []Op{Compute(sim.Millisecond)})
	o.Spawn("b", 0, []Op{Compute(2 * sim.Millisecond)})
	o.K.Run()
	if !o.AllDone() {
		t.Fatal("not all done after run")
	}
	if o.Makespan() != 3*sim.Millisecond {
		t.Fatalf("makespan %v", o.Makespan())
	}
}

func TestCtxSwitchAccounting(t *testing.T) {
	m := newMock()
	o := newOS(Config{Policy: RR, TimeSlice: sim.Millisecond, CtxSwitch: 10 * sim.Microsecond}, m)
	o.Spawn("a", 0, []Op{Compute(3 * sim.Millisecond)})
	o.Spawn("b", 0, []Op{Compute(3 * sim.Millisecond)})
	o.K.Run()
	if o.CtxSwitches < 4 {
		t.Fatalf("ctx switches = %d, want several", o.CtxSwitches)
	}
}

func TestReadyWaitAccumulates(t *testing.T) {
	m := newMock()
	o := newOS(Config{Policy: FIFO, CtxSwitch: 0}, m)
	o.Spawn("a", 0, []Op{Compute(10 * sim.Millisecond)})
	b, _ := o.Spawn("b", 0, []Op{Compute(sim.Millisecond)})
	o.K.Run()
	if b.ReadyWait < 10*sim.Millisecond {
		t.Fatalf("b ready wait %v, want >= 10ms", b.ReadyWait)
	}
}

func TestPolicyStrings(t *testing.T) {
	if FIFO.String() != "fifo" || RR.String() != "rr" || Priority.String() != "priority" {
		t.Fatal("policy names wrong")
	}
	if TaskReady.String() != "ready" || TaskDone.String() != "done" {
		t.Fatal("state names wrong")
	}
}

func TestCurrentRequestPanicsOnCompute(t *testing.T) {
	m := newMock()
	o := newOS(Config{}, m)
	task, _ := o.spawnAt(0, "a", 0, []Op{Compute(sim.Millisecond)}, false)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	task.CurrentRequest()
}
