// Package hostos simulates the general-purpose multitasking (possibly
// time-shared) host operating system of the paper: tasks with programs
// mixing CPU bursts and FPGA operations, a single-CPU scheduler
// (FIFO, round-robin, or preemptive priority), context-switch and
// system-call costs, and a pluggable FPGA resource manager.
//
// The FPGA itself is behind the FPGA interface; internal/core provides
// the paper's VFPGA managers and internal/baseline provides the
// comparison policies (exclusive non-preemptable FPGA, merged circuit,
// software-only execution).
package hostos

import (
	"fmt"

	"repro/internal/sim"
)

// Policy selects the CPU scheduling discipline.
type Policy int

// Scheduling policies.
const (
	FIFO     Policy = iota // run to completion, arrival order
	RR                     // round-robin with Config.TimeSlice
	Priority               // preemptive static priority (lower = higher)
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case RR:
		return "rr"
	case Priority:
		return "priority"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Config parameterizes the OS.
type Config struct {
	Policy    Policy
	TimeSlice sim.Time // quantum for RR (and priority round-robin ties)
	CtxSwitch sim.Time // cost charged on every dispatch of a different task
	Syscall   sim.Time // cost of entering the OS for an FPGA request
}

// DefaultConfig returns a 1990s-workstation flavored configuration:
// a 10 ms time slice and tens-of-microseconds kernel costs.
func DefaultConfig() Config {
	return Config{
		Policy:    RR,
		TimeSlice: 10 * sim.Millisecond,
		CtxSwitch: 50 * sim.Microsecond,
		Syscall:   10 * sim.Microsecond,
	}
}

// TaskID identifies a task.
type TaskID int

// TaskState enumerates the lifecycle states.
type TaskState int

// Task states.
const (
	TaskNew TaskState = iota
	TaskReady
	TaskRunning
	TaskBlocked // waiting for the FPGA resource
	TaskDone
)

func (s TaskState) String() string {
	switch s {
	case TaskNew:
		return "new"
	case TaskReady:
		return "ready"
	case TaskRunning:
		return "running"
	case TaskBlocked:
		return "blocked"
	case TaskDone:
		return "done"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// OpKind enumerates program operations.
type OpKind int

// Program operation kinds.
const (
	OpCompute OpKind = iota // CPU burst of duration D
	OpFPGA                  // hardware operation described by Req
)

// FPGARequest describes one hardware operation.
type FPGARequest struct {
	// Circuit names a configuration previously registered for the task.
	Circuit string
	// Evaluations is the number of input vectors pushed through a
	// combinational circuit (each takes one clock period).
	Evaluations int64
	// Cycles is the number of clock cycles a sequential circuit runs.
	Cycles int64
	// Pages optionally lists the configuration pages this operation
	// touches, for demand-paged managers; nil means the whole circuit.
	Pages []int
}

// Op is one step of a task program.
type Op struct {
	Kind OpKind
	D    sim.Time    // OpCompute duration
	Req  FPGARequest // OpFPGA request
}

// Compute returns a CPU burst op.
func Compute(d sim.Time) Op { return Op{Kind: OpCompute, D: d} }

// UseFPGA returns a hardware op.
func UseFPGA(req FPGARequest) Op { return Op{Kind: OpFPGA, Req: req} }

// flight tracks an FPGA op in progress across preemptions.
type flight struct {
	active   bool
	acquired bool // resource held (setup already paid)
	execLeft sim.Time
	total    sim.Time
}

// Task is one process in the simulated system.
type Task struct {
	ID       TaskID
	Name     string
	Priority int // lower is more urgent (Priority policy)

	program []Op
	pc      int
	state   TaskState
	// computeLeft is the remaining time of the current OpCompute.
	computeLeft sim.Time
	fl          flight

	// Metrics, all in virtual time.
	Created     sim.Time
	FirstRun    sim.Time
	Finished    sim.Time
	ReadyWait   sim.Time // time spent runnable but not running
	BlockWait   sim.Time // time spent blocked on the FPGA resource
	CPUTime     sim.Time // OpCompute execution
	HWTime      sim.Time // FPGA execution (including re-done rolled-back work)
	Overhead    sim.Time // syscalls, configuration, save/restore, ctx switches
	Preemptions int64
	Acquires    int64

	lastChange sim.Time
	started    bool
}

// State returns the task's current state.
func (t *Task) State() TaskState { return t.state }

// Turnaround returns completion time minus creation time (0 if unfinished).
func (t *Task) Turnaround() sim.Time {
	if t.state != TaskDone {
		return 0
	}
	return t.Finished - t.Created
}

// CurrentRequest returns the FPGA request of the op the task is executing
// or blocked on. It panics if the current op is not an FPGA op — callers
// are the FPGA managers, which are only consulted during FPGA ops.
func (t *Task) CurrentRequest() FPGARequest {
	op := t.program[t.pc]
	if op.Kind != OpFPGA {
		panic(fmt.Sprintf("hostos: task %s op %d is not an FPGA op", t.Name, t.pc))
	}
	return op.Req
}

// FPGA is the hardware resource manager the OS delegates FPGA operations
// to. internal/core implements the paper's virtualization policies;
// internal/baseline implements the comparison points.
type FPGA interface {
	// Register declares, at task-load time, a configuration the task will
	// use — the paper's fopen-like system call that stores the
	// configuration in the operating system tables.
	Register(t *Task, circuit string) error
	// Acquire asks for the task's current request to be made ready
	// (loading/partition assignment). If ready, setup is the time charged
	// to the task (download, table walks). If not ready the task blocks;
	// the manager must call OS.Unblock(t) when it can proceed, and the
	// subsequent Acquire must succeed.
	Acquire(t *Task) (setup sim.Time, ready bool)
	// ExecTime returns the pure hardware time of the task's current
	// request once loaded.
	ExecTime(t *Task) sim.Time
	// Preemptable reports whether the task's in-flight hardware op may be
	// preempted (sequential circuits need observable/controllable state;
	// a manager may declare the resource non-preemptable).
	Preemptable(t *Task) bool
	// Preempt is called when the OS preempts an in-flight hardware op
	// after `done` of `total` execution. It returns the immediate
	// overhead (state readback) and how much completed work survives
	// (done for save/restore; 0 for rollback).
	Preempt(t *Task, done, total sim.Time) (overhead, preserved sim.Time)
	// Resume is called when a preempted hardware op is rescheduled; the
	// returned overhead covers reload and state restore.
	Resume(t *Task) sim.Time
	// Complete is called when the hardware op finishes.
	Complete(t *Task)
	// Remove is called when the task exits (release partitions, tables).
	Remove(t *Task)
}

// OS is the simulated operating system. Create with New, add tasks with
// Spawn/SpawnAt, then drive the kernel.
type OS struct {
	K   *sim.Kernel
	cfg Config

	fpga    FPGA
	tasks   []*Task
	ready   []*Task
	current *Task

	segEvt   *sim.Event // end of the running segment
	segStart sim.Time
	segKind  segKind

	CtxSwitches int64
	lastTask    *Task
	idleSince   sim.Time
	BusyTime    sim.Time
	trace       *EventLog
}

type segKind int

const (
	segNone segKind = iota
	segCompute
	segSetup // syscall + configuration (non-preemptable)
	segExec  // hardware execution
)

// New returns an OS over the given kernel and FPGA manager.
func New(k *sim.Kernel, cfg Config, fpga FPGA) *OS {
	if cfg.TimeSlice <= 0 {
		cfg.TimeSlice = DefaultConfig().TimeSlice
	}
	return &OS{K: k, cfg: cfg, fpga: fpga}
}

// Config returns the OS configuration.
func (o *OS) Config() Config { return o.cfg }

// Tasks returns all tasks ever spawned.
func (o *OS) Tasks() []*Task { return o.tasks }

// Spawn creates a task at the current virtual time. The circuits named in
// the program's FPGA ops are registered with the manager (the paper's
// configuration declaration at task-load time).
func (o *OS) Spawn(name string, priority int, program []Op) (*Task, error) {
	return o.spawnAt(o.K.Now(), name, priority, program, true)
}

// SpawnAt schedules task creation at absolute virtual time at.
func (o *OS) SpawnAt(at sim.Time, name string, priority int, program []Op) {
	o.K.Schedule(at, func() {
		if _, err := o.spawnAt(at, name, priority, program, true); err != nil {
			panic(err)
		}
	})
}

func (o *OS) spawnAt(at sim.Time, name string, priority int, program []Op, admit bool) (*Task, error) {
	if len(program) == 0 {
		return nil, fmt.Errorf("hostos: task %q has an empty program", name)
	}
	t := &Task{
		ID:       TaskID(len(o.tasks)),
		Name:     name,
		Priority: priority,
		program:  program,
		Created:  at,
		state:    TaskNew,
	}
	o.tasks = append(o.tasks, t)
	seen := map[string]bool{}
	for _, op := range program {
		if op.Kind == OpFPGA && !seen[op.Req.Circuit] {
			seen[op.Req.Circuit] = true
			if err := o.fpga.Register(t, op.Req.Circuit); err != nil {
				return nil, fmt.Errorf("hostos: task %q: %w", name, err)
			}
		}
	}
	if admit {
		o.makeReady(t)
		o.maybePreemptFor(t)
		o.kick()
	}
	return t, nil
}

func (o *OS) makeReady(t *Task) {
	if t.state == TaskNew {
		o.emit(t, EvSpawn)
	} else {
		o.emit(t, EvReady)
	}
	t.state = TaskReady
	t.lastChange = o.K.Now()
	o.ready = append(o.ready, t)
}

// Unblock moves a blocked task back to the ready queue. FPGA managers
// call this when a queued resource request can proceed.
func (o *OS) Unblock(t *Task) {
	if t.state != TaskBlocked {
		panic(fmt.Sprintf("hostos: Unblock of task %s in state %v", t.Name, t.state))
	}
	t.BlockWait += o.K.Now() - t.lastChange
	o.makeReady(t)
	o.maybePreemptFor(t)
	o.kick()
}

// maybePreemptFor preempts the current task if the policy is Priority and
// the newly runnable task is strictly more urgent.
func (o *OS) maybePreemptFor(t *Task) {
	if o.cfg.Policy != Priority || o.current == nil || o.current == t {
		return
	}
	if t.Priority < o.current.Priority {
		o.preemptCurrent()
	}
}

// kick schedules a dispatch if the CPU is idle. Dispatch happens through
// the kernel so that all same-time events settle first.
func (o *OS) kick() {
	if o.current != nil {
		return
	}
	o.K.SchedulePri(o.K.Now(), 10, o.dispatch)
}

// pickNext removes and returns the next task to run, per policy.
func (o *OS) pickNext() *Task {
	if len(o.ready) == 0 {
		return nil
	}
	best := 0
	if o.cfg.Policy == Priority {
		for i, t := range o.ready {
			if t.Priority < o.ready[best].Priority {
				best = i
			}
		}
	}
	t := o.ready[best]
	o.ready = append(o.ready[:best], o.ready[best+1:]...)
	return t
}

func (o *OS) dispatch() {
	if o.current != nil {
		return
	}
	t := o.pickNext()
	if t == nil {
		return
	}
	now := o.K.Now()
	t.ReadyWait += now - t.lastChange
	t.state = TaskRunning
	t.lastChange = now
	o.emit(t, EvRun)
	if !t.started {
		t.started = true
		t.FirstRun = now
	}
	o.current = t
	start := now
	if o.lastTask != t {
		o.CtxSwitches++
		t.Overhead += o.cfg.CtxSwitch
		start += o.cfg.CtxSwitch
	}
	o.lastTask = t
	o.K.Schedule(start, func() { o.runSegment(t, o.sliceFor(t)) })
}

// sliceFor returns the absolute time at which the task's quantum expires,
// or 0 for run-to-completion policies.
func (o *OS) sliceFor(t *Task) sim.Time {
	switch o.cfg.Policy {
	case RR, Priority:
		return o.K.Now() + o.cfg.TimeSlice
	}
	return 0
}

// runSegment executes the current op of t until the op phase ends or the
// slice expires, whichever is first.
func (o *OS) runSegment(t *Task, sliceEnd sim.Time) {
	if o.current != t || t.state != TaskRunning {
		return // preempted between dispatch and segment start
	}
	if t.pc >= len(t.program) {
		o.finish(t)
		return
	}
	now := o.K.Now()
	op := &t.program[t.pc]
	switch op.Kind {
	case OpCompute:
		if t.computeLeft == 0 {
			t.computeLeft = op.D
		}
		run := t.computeLeft
		if sliceEnd > 0 && now+run > sliceEnd {
			run = sliceEnd - now
		}
		o.segKind = segCompute
		o.segStart = now
		o.segEvt = o.K.Schedule(now+run, func() {
			t.computeLeft -= run
			t.CPUTime += run
			o.BusyTime += run
			o.segEvt = nil
			if t.computeLeft == 0 {
				t.pc++
				o.continueOrYield(t, sliceEnd)
				return
			}
			t.Preemptions++
			o.preemptNow(t)
		})

	case OpFPGA:
		if !t.fl.active {
			// New hardware op: syscall + acquire.
			setup, ready := o.fpga.Acquire(t)
			t.Acquires++
			if !ready {
				o.block(t)
				return
			}
			total := o.fpga.ExecTime(t)
			t.fl = flight{active: true, acquired: true, execLeft: total, total: total}
			cost := o.cfg.Syscall + setup
			t.Overhead += cost
			o.BusyTime += cost
			o.segKind = segSetup
			o.segEvt = o.K.Schedule(now+cost, func() {
				o.segEvt = nil
				o.runSegment(t, o.extendIfExpired(t, sliceEnd))
			})
			return
		}
		if !t.fl.acquired {
			// Resuming a preempted op: reload + restore.
			cost := o.fpga.Resume(t)
			t.fl.acquired = true
			t.Overhead += cost
			o.BusyTime += cost
			o.segKind = segSetup
			o.segEvt = o.K.Schedule(now+cost, func() {
				o.segEvt = nil
				o.runSegment(t, o.extendIfExpired(t, sliceEnd))
			})
			return
		}
		// Execute.
		run := t.fl.execLeft
		preemptible := sliceEnd > 0 && o.fpga.Preemptable(t)
		willPreempt := false
		if preemptible && now+run > sliceEnd {
			// The paper's §3 analysis: mid-op preemption is only possible
			// when the circuit's state can be saved (or recomputed).
			run = sliceEnd - now
			willPreempt = true
		}
		o.segKind = segExec
		o.segStart = now
		o.segEvt = o.K.Schedule(now+run, func() {
			o.segEvt = nil
			t.HWTime += run
			o.BusyTime += run
			if !willPreempt {
				t.fl = flight{}
				o.fpga.Complete(t)
				t.pc++
				o.continueOrYield(t, sliceEnd)
				return
			}
			t.fl.execLeft -= run
			if len(o.ready) == 0 {
				// Nobody else is runnable: keep the circuit going with a
				// fresh quantum instead of preempting into thin air (which
				// would livelock rollback-mode circuits longer than a slice).
				o.runSegment(t, o.sliceFor(t))
				return
			}
			done := t.fl.total - t.fl.execLeft
			overhead, preserved := o.fpga.Preempt(t, done, t.fl.total)
			t.fl.execLeft = t.fl.total - preserved
			t.fl.acquired = false
			t.Preemptions++
			t.Overhead += overhead
			o.BusyTime += overhead
			// State save runs before the switch completes.
			o.K.Schedule(o.K.Now()+overhead, func() { o.preemptNow(t) })
		})
	}
}

// extendIfExpired grants a fresh quantum when a non-preemptable setup
// phase (configuration download, state restore) consumed the entire
// slice; otherwise the original quantum stands. The extension guarantees
// forward progress when downloads exceed the time slice — the pathology
// the paper warns about in §3 — without refreshing the quantum on every
// cheap system call.
func (o *OS) extendIfExpired(t *Task, sliceEnd sim.Time) sim.Time {
	if sliceEnd > 0 && o.K.Now() >= sliceEnd {
		return o.sliceFor(t)
	}
	return sliceEnd
}

// continueOrYield decides what happens after an op completes: keep running
// within the slice, or yield at the quantum boundary.
func (o *OS) continueOrYield(t *Task, sliceEnd sim.Time) {
	if t.pc >= len(t.program) {
		o.finish(t)
		return
	}
	now := o.K.Now()
	if sliceEnd > 0 && now >= sliceEnd {
		if len(o.ready) > 0 {
			o.preemptNow(t)
			return
		}
		sliceEnd = o.sliceFor(t) // nobody waiting: grant a fresh quantum
	}
	o.runSegment(t, sliceEnd)
}

// preemptCurrent preempts the running task immediately (priority policy).
// Non-preemptable phases (setup, non-preemptable exec) finish first: the
// segment-end path re-dispatches and the scheduler picks by priority.
func (o *OS) preemptCurrent() {
	t := o.current
	if t == nil {
		return
	}
	switch o.segKind {
	case segCompute:
		if o.segEvt != nil {
			o.K.Cancel(o.segEvt)
			o.segEvt = nil
			ran := o.K.Now() - o.segStart
			t.computeLeft -= ran
			t.CPUTime += ran
			o.BusyTime += ran
		}
		t.Preemptions++
		o.preemptNow(t)
	case segExec:
		if o.fpga.Preemptable(t) && o.segEvt != nil {
			o.K.Cancel(o.segEvt)
			o.segEvt = nil
			ran := o.K.Now() - o.segStart
			t.HWTime += ran
			o.BusyTime += ran
			done := t.fl.total - t.fl.execLeft + ran
			overhead, preserved := o.fpga.Preempt(t, done, t.fl.total)
			t.fl.execLeft = t.fl.total - preserved
			t.fl.acquired = false
			t.Preemptions++
			t.Overhead += overhead
			o.BusyTime += overhead
			o.K.Schedule(o.K.Now()+overhead, func() { o.preemptNow(t) })
		}
		// Non-preemptable: let the op finish; dispatch will re-sort.
	case segSetup:
		// OS code: finishes, then the scheduler re-decides.
	}
}

// preemptNow moves the running task back to ready and dispatches.
func (o *OS) preemptNow(t *Task) {
	if o.current != t {
		return
	}
	o.current = nil
	o.segKind = segNone
	o.makeReady(t)
	o.kick()
}

// block parks the running task waiting for the FPGA manager.
func (o *OS) block(t *Task) {
	o.current = nil
	o.segKind = segNone
	t.state = TaskBlocked
	t.lastChange = o.K.Now()
	o.emit(t, EvBlock)
	o.kick()
}

// finish completes a task.
func (o *OS) finish(t *Task) {
	o.current = nil
	o.segKind = segNone
	t.state = TaskDone
	t.Finished = o.K.Now()
	o.emit(t, EvDone)
	o.fpga.Remove(t)
	o.kick()
}

// Reset clears the task table and every piece of scheduler state,
// returning the OS to its post-construction state over the same kernel
// and FPGA manager. Warm-board serving calls it between jobs instead of
// building a new OS; the caller must have drained (or Reset) the kernel
// first so no stale events reference the old tasks. The trace log is
// detached — per-job tracing re-attaches a fresh one.
func (o *OS) Reset() {
	o.tasks = nil
	o.ready = nil
	o.current = nil
	o.segEvt = nil
	o.segStart = 0
	o.segKind = segNone
	o.CtxSwitches = 0
	o.lastTask = nil
	o.idleSince = 0
	o.BusyTime = 0
	o.trace = nil
}

// AllDone reports whether every spawned task has completed.
func (o *OS) AllDone() bool {
	for _, t := range o.tasks {
		if t.state != TaskDone {
			return false
		}
	}
	return len(o.tasks) > 0
}

// Makespan returns the latest completion time across all tasks.
func (o *OS) Makespan() sim.Time {
	var m sim.Time
	for _, t := range o.tasks {
		if t.Finished > m {
			m = t.Finished
		}
	}
	return m
}
