package hostos

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestTraceRecordsLifecycle(t *testing.T) {
	m := newMock()
	o := newOS(Config{Policy: RR, TimeSlice: sim.Millisecond, CtxSwitch: 0}, m)
	log := NewEventLog(0)
	o.AttachTrace(log)
	o.Spawn("a", 0, []Op{Compute(3 * sim.Millisecond)})
	o.Spawn("b", 0, []Op{Compute(3 * sim.Millisecond)})
	o.K.Run()

	kinds := map[string][]EventKind{}
	for _, e := range log.Events() {
		kinds[e.Task] = append(kinds[e.Task], e.Kind)
	}
	for _, task := range []string{"a", "b"} {
		ks := kinds[task]
		if len(ks) < 3 {
			t.Fatalf("%s: only %d events", task, len(ks))
		}
		if ks[0] != EvSpawn {
			t.Fatalf("%s: first event %v", task, ks[0])
		}
		if ks[len(ks)-1] != EvDone {
			t.Fatalf("%s: last event %v", task, ks[len(ks)-1])
		}
		runs, readies := 0, 0
		for _, k := range ks {
			switch k {
			case EvRun:
				runs++
			case EvReady:
				readies++
			}
		}
		if runs < 2 || readies < 1 {
			t.Fatalf("%s: expected RR interleaving, got %v", task, ks)
		}
	}
}

func TestTraceBlockEvents(t *testing.T) {
	m := newMock()
	m.exclusive = true
	m.preemptable = false
	o := newOS(Config{Policy: RR, TimeSlice: sim.Millisecond, CtxSwitch: 0}, m)
	log := NewEventLog(0)
	o.AttachTrace(log)
	o.Spawn("holder", 0, []Op{
		UseFPGA(FPGARequest{Circuit: "c", Evaluations: 5000}),
		Compute(3 * sim.Millisecond),
	})
	o.Spawn("waiter", 0, []Op{
		Compute(100 * sim.Microsecond),
		UseFPGA(FPGARequest{Circuit: "c", Evaluations: 100}),
	})
	o.K.Run()
	sawBlock := false
	for _, e := range log.Events() {
		if e.Task == "waiter" && e.Kind == EvBlock {
			sawBlock = true
		}
	}
	if !sawBlock {
		t.Fatal("no block event recorded for the waiter")
	}
}

func TestTraceCap(t *testing.T) {
	log := NewEventLog(3)
	for i := 0; i < 10; i++ {
		log.Emit(Event{At: sim.Time(i), Task: "x", Kind: EvRun})
	}
	if len(log.Events()) != 3 {
		t.Fatalf("cap not applied: %d", len(log.Events()))
	}
	if log.Events()[0].At != 7 {
		t.Fatal("oldest events not dropped")
	}
}

func TestGanttRender(t *testing.T) {
	m := newMock()
	o := newOS(Config{Policy: RR, TimeSlice: sim.Millisecond, CtxSwitch: 0}, m)
	log := NewEventLog(0)
	o.AttachTrace(log)
	o.Spawn("alpha", 0, []Op{Compute(2 * sim.Millisecond)})
	o.Spawn("beta", 0, []Op{Compute(2 * sim.Millisecond)})
	o.K.Run()

	g := log.Gantt(40, o.Makespan())
	if !strings.Contains(g, "alpha") || !strings.Contains(g, "beta") {
		t.Fatalf("tasks missing from gantt:\n%s", g)
	}
	if !strings.Contains(g, "#") {
		t.Fatalf("no running segments in gantt:\n%s", g)
	}
	// alpha and beta alternate: both rows contain ready time too.
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 3 { // header + 2 tasks
		t.Fatalf("gantt lines %d:\n%s", len(lines), g)
	}
	if !strings.Contains(lines[1], ".") && !strings.Contains(lines[2], ".") {
		t.Fatalf("no ready time visible:\n%s", g)
	}
}

func TestGanttEmpty(t *testing.T) {
	log := NewEventLog(0)
	if log.Gantt(40, 100) != "" {
		t.Fatal("empty log rendered a gantt")
	}
	if log.String() != "" {
		t.Fatal("empty log rendered events")
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvSpawn: "spawn", EvRun: "run", EvReady: "ready", EvBlock: "block", EvDone: "done",
	} {
		if k.String() != want {
			t.Fatalf("kind %d = %q", int(k), k.String())
		}
	}
}
