package hostos

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// EventKind classifies scheduler trace events.
type EventKind int

// Trace event kinds.
const (
	EvSpawn EventKind = iota
	EvRun             // task dispatched onto the CPU
	EvReady           // task became runnable (preempted or woken)
	EvBlock           // task suspended on the FPGA resource
	EvDone
)

func (k EventKind) String() string {
	switch k {
	case EvSpawn:
		return "spawn"
	case EvRun:
		return "run"
	case EvReady:
		return "ready"
	case EvBlock:
		return "block"
	case EvDone:
		return "done"
	}
	return fmt.Sprintf("ev(%d)", int(k))
}

// Event is one scheduling transition.
type Event struct {
	At   sim.Time
	Task string
	Kind EventKind
}

// EventLog records scheduling events for post-mortem inspection: raw
// event listing and an ASCII Gantt chart. Attach with OS.AttachTrace.
type EventLog struct {
	events []Event
	limit  int
}

// NewEventLog returns a log capped at limit events (0 = unbounded).
func NewEventLog(limit int) *EventLog {
	return &EventLog{limit: limit}
}

// Emit appends an event (dropping the oldest beyond the cap).
func (l *EventLog) Emit(e Event) {
	l.events = append(l.events, e)
	if l.limit > 0 && len(l.events) > l.limit {
		l.events = l.events[len(l.events)-l.limit:]
	}
}

// Events returns the recorded events in order.
func (l *EventLog) Events() []Event { return l.events }

// String renders the raw event list.
func (l *EventLog) String() string {
	var b strings.Builder
	for _, e := range l.events {
		fmt.Fprintf(&b, "%12v  %-10s %s\n", e.At, e.Task, e.Kind)
	}
	return b.String()
}

// Gantt renders a per-task timeline of width columns covering [0, end]:
// '#' running, '.' ready, 'b' blocked on the FPGA, ' ' not alive.
func (l *EventLog) Gantt(width int, end sim.Time) string {
	if width <= 0 || end <= 0 || len(l.events) == 0 {
		return ""
	}
	// Collect tasks in first-appearance order.
	var order []string
	perTask := map[string][]Event{}
	for _, e := range l.events {
		if _, ok := perTask[e.Task]; !ok {
			order = append(order, e.Task)
		}
		perTask[e.Task] = append(perTask[e.Task], e)
	}
	nameW := 0
	for _, n := range order {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s  |0%*s|%v\n", nameW, "", width-2, "", end)
	for _, name := range order {
		evs := perTask[name]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		state := byte(' ')
		prev := sim.Time(0)
		paint := func(from, to sim.Time, ch byte) {
			if ch == ' ' {
				return
			}
			lo := int(int64(from) * int64(width) / int64(end))
			hi := int(int64(to) * int64(width) / int64(end))
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi && i >= 0; i++ {
				row[i] = ch
			}
		}
		for _, e := range evs {
			paint(prev, e.At, state)
			switch e.Kind {
			case EvSpawn, EvReady:
				state = '.'
			case EvRun:
				state = '#'
			case EvBlock:
				state = 'b'
			case EvDone:
				state = ' '
			}
			prev = e.At
		}
		paint(prev, end, state)
		fmt.Fprintf(&b, "%*s  %s\n", nameW, name, string(row))
	}
	return b.String()
}

// AttachTrace starts recording scheduling events into log.
func (o *OS) AttachTrace(log *EventLog) { o.trace = log }

// emit records a trace event if tracing is attached.
func (o *OS) emit(t *Task, kind EventKind) {
	if o.trace == nil {
		return
	}
	o.trace.Emit(Event{At: o.K.Now(), Task: t.Name, Kind: kind})
}
