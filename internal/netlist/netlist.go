// Package netlist defines gate-level logic networks: the input to the
// technology-mapping / placement / routing flow that produces FPGA
// configurations, and the golden reference model against which the fabric
// functional simulation is checked.
//
// A Netlist is a directed graph of primitive nodes (AND/OR/XOR/NOT/MUX,
// constants, D flip-flops and ports). Combinational cycles are rejected;
// sequential behaviour arises only through DFF nodes, whose outputs act as
// sources and whose data inputs act as sinks of the combinational graph.
package netlist

import (
	"fmt"
	"sort"
)

// Kind enumerates the primitive node types.
type Kind int

// Primitive node kinds.
const (
	KindInput  Kind = iota // primary input port
	KindOutput             // primary output port (single fanin)
	KindConst              // constant 0/1
	KindBuf                // identity (used for port aliasing)
	KindNot
	KindAnd  // 2-input
	KindOr   // 2-input
	KindXor  // 2-input
	KindNand // 2-input
	KindNor  // 2-input
	KindMux  // 3-input: fanin[0]=sel, fanin[1]=when sel 0, fanin[2]=when sel 1
	KindDFF  // 1-input D flip-flop, posedge implicit clock
)

var kindNames = map[Kind]string{
	KindInput: "input", KindOutput: "output", KindConst: "const",
	KindBuf: "buf", KindNot: "not", KindAnd: "and", KindOr: "or",
	KindXor: "xor", KindNand: "nand", KindNor: "nor", KindMux: "mux",
	KindDFF: "dff",
}

// String returns the lowercase mnemonic for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Arity returns the number of fanins the kind requires, or -1 if
// unknown. Exported for the static verifier, which must re-check arity
// on netlists that never went through Builder.Build.
func (k Kind) Arity() int {
	switch k {
	case KindInput, KindConst:
		return 0
	case KindOutput, KindBuf, KindNot, KindDFF:
		return 1
	case KindAnd, KindOr, KindXor, KindNand, KindNor:
		return 2
	case KindMux:
		return 3
	}
	return -1
}

// NodeID identifies a node within one Netlist.
type NodeID int

// Node is one primitive element of the network.
type Node struct {
	ID    NodeID
	Kind  Kind
	Fanin []NodeID
	Name  string // port name for Input/Output; optional label otherwise
	Init  bool   // Const value, or DFF reset value
}

// Netlist is an immutable gate-level network produced by a Builder.
type Netlist struct {
	Name    string
	Nodes   []Node
	Inputs  []NodeID // primary inputs in port order
	Outputs []NodeID // primary outputs in port order
	DFFs    []NodeID // all flip-flops

	topo []NodeID // combinational topological order (excludes Input/Const)
}

// NumInputs returns the number of primary input ports.
func (n *Netlist) NumInputs() int { return len(n.Inputs) }

// NumOutputs returns the number of primary output ports.
func (n *Netlist) NumOutputs() int { return len(n.Outputs) }

// NumDFFs returns the number of flip-flops.
func (n *Netlist) NumDFFs() int { return len(n.DFFs) }

// IsSequential reports whether the network contains any flip-flops.
func (n *Netlist) IsSequential() bool { return len(n.DFFs) > 0 }

// NumGates returns the number of combinational logic nodes (everything but
// ports, constants and DFFs).
func (n *Netlist) NumGates() int {
	count := 0
	for i := range n.Nodes {
		switch n.Nodes[i].Kind {
		case KindInput, KindOutput, KindConst, KindDFF:
		default:
			count++
		}
	}
	return count
}

// Node returns the node with the given id.
func (n *Netlist) Node(id NodeID) *Node { return &n.Nodes[id] }

// InputNames returns the primary input port names in port order.
func (n *Netlist) InputNames() []string {
	names := make([]string, len(n.Inputs))
	for i, id := range n.Inputs {
		names[i] = n.Nodes[id].Name
	}
	return names
}

// OutputNames returns the primary output port names in port order.
func (n *Netlist) OutputNames() []string {
	names := make([]string, len(n.Outputs))
	for i, id := range n.Outputs {
		names[i] = n.Nodes[id].Name
	}
	return names
}

// Depth returns the maximum combinational depth in gate levels, where
// inputs, constants, and DFF outputs are at level 0 and each logic gate
// adds one level. Output and Buf nodes are transparent.
func (n *Netlist) Depth() int {
	level := make([]int, len(n.Nodes))
	maxDepth := 0
	for _, id := range n.topo {
		nd := &n.Nodes[id]
		in := 0
		for _, f := range nd.Fanin {
			if level[f] > in {
				in = level[f]
			}
		}
		switch nd.Kind {
		case KindInput, KindConst, KindOutput, KindBuf, KindDFF:
			level[id] = in
		default:
			level[id] = in + 1
		}
		if level[id] > maxDepth {
			maxDepth = level[id]
		}
	}
	return maxDepth
}

// Stats summarizes a netlist for reports.
type Stats struct {
	Inputs, Outputs, Gates, DFFs, Depth int
}

// Stats returns the summary for the netlist.
func (n *Netlist) Stats() Stats {
	return Stats{
		Inputs:  len(n.Inputs),
		Outputs: len(n.Outputs),
		Gates:   n.NumGates(),
		DFFs:    len(n.DFFs),
		Depth:   n.Depth(),
	}
}

// String renders a one-line summary.
func (n *Netlist) String() string {
	s := n.Stats()
	return fmt.Sprintf("%s: %d in, %d out, %d gates, %d ffs, depth %d",
		n.Name, s.Inputs, s.Outputs, s.Gates, s.DFFs, s.Depth)
}

// TopoOrder returns the combinational evaluation order: every non-source
// node appears after all of its combinational fanins (DFF outputs count as
// sources). The returned slice must not be modified.
func (n *Netlist) TopoOrder() []NodeID { return n.topo }

// Fanouts computes, for each node, the list of nodes that consume it.
func (n *Netlist) Fanouts() [][]NodeID {
	out := make([][]NodeID, len(n.Nodes))
	for i := range n.Nodes {
		for _, f := range n.Nodes[i].Fanin {
			out[f] = append(out[f], NodeID(i))
		}
	}
	return out
}

// computeTopo builds the combinational topological order and detects
// combinational cycles. DFFs are treated as both source (their output) and
// sink (their D input), so they appear in the order but contribute no
// combinational dependency.
func (n *Netlist) computeTopo() error {
	indeg := make([]int, len(n.Nodes))
	fanouts := make([][]NodeID, len(n.Nodes))
	for i := range n.Nodes {
		nd := &n.Nodes[i]
		if nd.Kind == KindDFF {
			continue // D input is a sequential, not combinational, dependency
		}
		for _, f := range nd.Fanin {
			indeg[i]++
			fanouts[f] = append(fanouts[f], NodeID(i))
		}
	}
	// Seed the queue with all sources, in id order for determinism.
	queue := make([]NodeID, 0, len(n.Nodes))
	for i := range n.Nodes {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	n.topo = n.topo[:0]
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		n.topo = append(n.topo, id)
		for _, succ := range fanouts[id] {
			indeg[succ]--
			if indeg[succ] == 0 {
				queue = append(queue, succ)
			}
		}
	}
	if len(n.topo) != len(n.Nodes) {
		return fmt.Errorf("netlist %q: combinational cycle detected (%d of %d nodes ordered)",
			n.Name, len(n.topo), len(n.Nodes))
	}
	return nil
}

// validate checks structural invariants: arities, fanin ranges, port
// uniqueness.
func (n *Netlist) validate() error {
	seen := map[string]Kind{}
	for i := range n.Nodes {
		nd := &n.Nodes[i]
		if nd.ID != NodeID(i) {
			return fmt.Errorf("netlist %q: node %d has mismatched id %d", n.Name, i, nd.ID)
		}
		if want := nd.Kind.Arity(); want >= 0 && len(nd.Fanin) != want {
			return fmt.Errorf("netlist %q: node %d (%v) has %d fanins, want %d",
				n.Name, i, nd.Kind, len(nd.Fanin), want)
		}
		for _, f := range nd.Fanin {
			if f < 0 || int(f) >= len(n.Nodes) {
				return fmt.Errorf("netlist %q: node %d references out-of-range fanin %d", n.Name, i, f)
			}
			if fk := n.Nodes[f].Kind; fk == KindOutput {
				return fmt.Errorf("netlist %q: node %d reads from output port %d", n.Name, i, f)
			}
		}
		if nd.Kind == KindInput || nd.Kind == KindOutput {
			if nd.Name == "" {
				return fmt.Errorf("netlist %q: unnamed port node %d", n.Name, i)
			}
			if prev, dup := seen[nd.Name]; dup && prev == nd.Kind {
				return fmt.Errorf("netlist %q: duplicate %v port %q", n.Name, nd.Kind, nd.Name)
			}
			seen[nd.Name] = nd.Kind
		}
	}
	return nil
}

// Builder incrementally constructs a Netlist. All methods return NodeIDs
// that can be used as fanins to later nodes. Build validates the result.
type Builder struct {
	nl    Netlist
	built bool
}

// NewBuilder returns a Builder for a netlist with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{nl: Netlist{Name: name}}
}

func (b *Builder) add(kind Kind, name string, init bool, fanin ...NodeID) NodeID {
	if b.built {
		panic("netlist: Builder reused after Build")
	}
	id := NodeID(len(b.nl.Nodes))
	b.nl.Nodes = append(b.nl.Nodes, Node{ID: id, Kind: kind, Fanin: fanin, Name: name, Init: init})
	return id
}

// Input declares a primary input port.
func (b *Builder) Input(name string) NodeID {
	id := b.add(KindInput, name, false)
	b.nl.Inputs = append(b.nl.Inputs, id)
	return id
}

// InputBus declares width input ports named name[0..width).
func (b *Builder) InputBus(name string, width int) []NodeID {
	ids := make([]NodeID, width)
	for i := range ids {
		ids[i] = b.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return ids
}

// Output declares a primary output port driven by src.
func (b *Builder) Output(name string, src NodeID) NodeID {
	id := b.add(KindOutput, name, false, src)
	b.nl.Outputs = append(b.nl.Outputs, id)
	return id
}

// OutputBus declares width output ports named name[0..width) driven by srcs.
func (b *Builder) OutputBus(name string, srcs []NodeID) []NodeID {
	ids := make([]NodeID, len(srcs))
	for i, s := range srcs {
		ids[i] = b.Output(fmt.Sprintf("%s[%d]", name, i), s)
	}
	return ids
}

// Const returns a constant node with the given value.
func (b *Builder) Const(v bool) NodeID { return b.add(KindConst, "", v) }

// Buf returns an identity node.
func (b *Builder) Buf(a NodeID) NodeID { return b.add(KindBuf, "", false, a) }

// Not returns the negation of a.
func (b *Builder) Not(a NodeID) NodeID { return b.add(KindNot, "", false, a) }

// And returns a AND b; variadic forms reduce left-to-right.
func (b *Builder) And(xs ...NodeID) NodeID { return b.reduce(KindAnd, xs) }

// Or returns a OR b; variadic forms reduce left-to-right.
func (b *Builder) Or(xs ...NodeID) NodeID { return b.reduce(KindOr, xs) }

// Xor returns a XOR b; variadic forms reduce left-to-right.
func (b *Builder) Xor(xs ...NodeID) NodeID { return b.reduce(KindXor, xs) }

// Nand returns NOT(a AND b).
func (b *Builder) Nand(x, y NodeID) NodeID { return b.add(KindNand, "", false, x, y) }

// Nor returns NOT(a OR b).
func (b *Builder) Nor(x, y NodeID) NodeID { return b.add(KindNor, "", false, x, y) }

// Mux returns ifZero when sel is 0, ifOne when sel is 1.
func (b *Builder) Mux(sel, ifZero, ifOne NodeID) NodeID {
	return b.add(KindMux, "", false, sel, ifZero, ifOne)
}

// DFF returns a D flip-flop sampling d on the implicit clock, with reset
// value init.
func (b *Builder) DFF(d NodeID, init bool) NodeID {
	id := b.add(KindDFF, "", init, d)
	b.nl.DFFs = append(b.nl.DFFs, id)
	return id
}

func (b *Builder) reduce(kind Kind, xs []NodeID) NodeID {
	if len(xs) == 0 {
		panic("netlist: reduction over no operands")
	}
	acc := xs[0]
	for _, x := range xs[1:] {
		acc = b.add(kind, "", false, acc, x)
	}
	return acc
}

// Build validates and freezes the netlist. The Builder must not be used
// afterwards.
func (b *Builder) Build() (*Netlist, error) {
	if b.built {
		panic("netlist: Build called twice")
	}
	b.built = true
	nl := &b.nl
	if err := nl.validate(); err != nil {
		return nil, err
	}
	if err := nl.computeTopo(); err != nil {
		return nil, err
	}
	return nl, nil
}

// MustBuild is Build that panics on error; for use by the circuit library
// whose generators are structurally correct by construction.
func (b *Builder) MustBuild() *Netlist {
	nl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return nl
}

// PortIndex returns the position of the named input (or output) port, or
// -1 if absent. Useful for driving simulations by port name.
func (n *Netlist) PortIndex(name string, output bool) int {
	ports := n.Inputs
	if output {
		ports = n.Outputs
	}
	for i, id := range ports {
		if n.Nodes[id].Name == name {
			return i
		}
	}
	return -1
}

// SortedPortNames returns all port names sorted, for stable debugging output.
func (n *Netlist) SortedPortNames() []string {
	names := append(n.InputNames(), n.OutputNames()...)
	sort.Strings(names)
	return names
}
