package netlist

import (
	"fmt"
	"sort"
)

// Segment decomposes a combinational netlist into k self-contained
// stages — the paper's §2 segmentation: "decomposes the function to be
// downloaded in the FPGA into smaller parts computing a self-contained
// sub-function and, as a consequence, having variable size".
//
// Gates are assigned to stages by logic level, so every wire crosses
// stage boundaries forward only. Signals that cross a boundary become an
// output port of the producing stage and an input port of each consuming
// stage, named "w<id>" after the original node; primary ports keep their
// names. The host (or the VFPGA manager) carries the wire values between
// stage executions, loading one stage at a time.
//
// Sequential netlists cannot be segmented this way (state would straddle
// stages); Segment returns an error for them.
func Segment(nl *Netlist, k int) ([]*Netlist, error) {
	if nl.IsSequential() {
		return nil, fmt.Errorf("netlist: cannot segment sequential circuit %q", nl.Name)
	}
	if k <= 0 {
		return nil, fmt.Errorf("netlist: segment count %d", k)
	}
	depth := nl.Depth()
	if depth == 0 {
		k = 1 // pure wiring: one stage
	}
	if k > depth && depth > 0 {
		k = depth
	}

	// Level per node (inputs/consts at 0, each gate one deeper).
	level := make([]int, len(nl.Nodes))
	for _, id := range nl.TopoOrder() {
		nd := &nl.Nodes[id]
		in := 0
		for _, f := range nd.Fanin {
			if level[f] > in {
				in = level[f]
			}
		}
		switch nd.Kind {
		case KindInput, KindConst, KindOutput, KindBuf:
			level[id] = in
		default:
			level[id] = in + 1
		}
	}
	stageOf := func(id NodeID) int {
		if depth == 0 {
			return 0
		}
		s := (level[id] - 1) * k / depth
		if s < 0 {
			s = 0
		}
		if s >= k {
			s = k - 1
		}
		return s
	}

	// resolve follows Buf/Output to the producing node.
	var resolve func(id NodeID) NodeID
	resolve = func(id NodeID) NodeID {
		nd := &nl.Nodes[id]
		if nd.Kind == KindBuf || nd.Kind == KindOutput {
			return resolve(nd.Fanin[0])
		}
		return id
	}
	isGate := func(id NodeID) bool {
		switch nl.Nodes[id].Kind {
		case KindInput, KindConst, KindOutput, KindBuf, KindDFF:
			return false
		}
		return true
	}

	// Which stages consume each producing node?
	consumers := map[NodeID]map[int]bool{} // producer -> stages needing it
	note := func(producer NodeID, stage int) {
		m := consumers[producer]
		if m == nil {
			m = map[int]bool{}
			consumers[producer] = m
		}
		m[stage] = true
	}
	for i := range nl.Nodes {
		nd := &nl.Nodes[i]
		if !isGate(NodeID(i)) {
			continue
		}
		s := stageOf(NodeID(i))
		for _, f := range nd.Fanin {
			note(resolve(f), s)
		}
	}
	// Primary outputs "consume" in a virtual stage k (so producers export).
	outStage := k
	for _, o := range nl.Outputs {
		note(resolve(nl.Nodes[o].Fanin[0]), outStage)
	}

	stages := make([]*Builder, k)
	for s := range stages {
		stages[s] = NewBuilder(fmt.Sprintf("%s_seg%dof%d", nl.Name, s+1, k))
	}
	// localID[s][orig] = node id of orig's value within stage s.
	localID := make([]map[NodeID]NodeID, k)
	for s := range localID {
		localID[s] = map[NodeID]NodeID{}
	}
	wireName := func(id NodeID) string { return fmt.Sprintf("w%d", id) }

	// valueIn returns (importing if needed) node orig's value in stage s.
	var valueIn func(s int, orig NodeID) NodeID
	valueIn = func(s int, orig NodeID) NodeID {
		orig = resolve(orig)
		if id, ok := localID[s][orig]; ok {
			return id
		}
		b := stages[s]
		nd := &nl.Nodes[orig]
		var id NodeID
		switch {
		case nd.Kind == KindConst:
			id = b.Const(nd.Init)
		case nd.Kind == KindInput:
			id = b.Input(nd.Name)
		default: // a gate from an earlier stage: import as a wire port
			if stageOf(orig) >= s {
				panic(fmt.Sprintf("netlist: segment %d imports node %d of stage %d", s, orig, stageOf(orig)))
			}
			id = b.Input(wireName(orig))
		}
		localID[s][orig] = id
		return id
	}

	// Build gates stage by stage in global topological order.
	for _, id := range nl.TopoOrder() {
		if !isGate(id) {
			continue
		}
		s := stageOf(id)
		b := stages[s]
		nd := &nl.Nodes[id]
		fan := make([]NodeID, len(nd.Fanin))
		for i, f := range nd.Fanin {
			fan[i] = valueIn(s, f)
		}
		var local NodeID
		switch nd.Kind {
		case KindNot:
			local = b.Not(fan[0])
		case KindAnd:
			local = b.And(fan[0], fan[1])
		case KindOr:
			local = b.Or(fan[0], fan[1])
		case KindXor:
			local = b.Xor(fan[0], fan[1])
		case KindNand:
			local = b.Nand(fan[0], fan[1])
		case KindNor:
			local = b.Nor(fan[0], fan[1])
		case KindMux:
			local = b.Mux(fan[0], fan[1], fan[2])
		default:
			return nil, fmt.Errorf("netlist: cannot segment %v node", nd.Kind)
		}
		localID[s][id] = local
	}

	// Export boundary wires: producer stages emit an output port for each
	// consumer in a later stage (or the virtual output stage). Producers
	// are visited in id order so stage port order (and hence downstream
	// placement) is deterministic.
	producers := make([]NodeID, 0, len(consumers))
	for producer := range consumers {
		producers = append(producers, producer)
	}
	sort.Slice(producers, func(i, j int) bool { return producers[i] < producers[j] })
	for _, producer := range producers {
		users := consumers[producer]
		ps := 0
		if isGate(producer) {
			ps = stageOf(producer)
		} else {
			continue // inputs/consts are imported directly, never exported
		}
		needed := false
		for s := range users {
			// Primary outputs (the virtual stage) are exported under their
			// own port names below, not as wires.
			if s > ps && s != outStage {
				needed = true
			}
		}
		if !needed {
			continue
		}
		stages[ps].Output(wireName(producer), localID[ps][producer])
	}
	// Primary outputs: emitted by the stage producing their driver (or,
	// for input/const-driven outputs, by stage 0).
	for _, o := range nl.Outputs {
		driver := resolve(nl.Nodes[o].Fanin[0])
		s := 0
		if isGate(driver) {
			s = stageOf(driver)
		}
		stages[s].Output(nl.Nodes[o].Name, valueIn(s, driver))
	}

	out := make([]*Netlist, k)
	for s := range stages {
		var err error
		out[s], err = stages[s].Build()
		if err != nil {
			return nil, fmt.Errorf("netlist: segment %d: %w", s, err)
		}
	}
	return out, nil
}

// EvalSegments executes the stages in order, carrying boundary wires in
// an environment, and returns the values of the original circuit's
// outputs in original port order. It is the host-side composition loop a
// segmented application runs (load stage, present wires, collect wires).
func EvalSegments(stages []*Netlist, original *Netlist, inputs []bool) []bool {
	env := map[string]bool{}
	for i, id := range original.Inputs {
		env[original.Nodes[id].Name] = inputs[i]
	}
	for _, st := range stages {
		in := make([]bool, st.NumInputs())
		for i, name := range st.InputNames() {
			v, ok := env[name]
			if !ok {
				panic(fmt.Sprintf("netlist: stage %s needs undefined wire %s", st.Name, name))
			}
			in[i] = v
		}
		out := NewSimulator(st).Eval(in)
		for i, name := range st.OutputNames() {
			env[name] = out[i]
		}
	}
	res := make([]bool, original.NumOutputs())
	for i, name := range original.OutputNames() {
		v, ok := env[name]
		if !ok {
			panic(fmt.Sprintf("netlist: output %s never produced", name))
		}
		res[i] = v
	}
	return res
}

// SegmentSizes reports the gate count of each stage, sorted by stage.
func SegmentSizes(stages []*Netlist) []int {
	sizes := make([]int, len(stages))
	for i, s := range stages {
		sizes[i] = s.NumGates()
	}
	return sizes
}

// sortedWireNames is a test helper: the boundary interface of a stage.
func sortedWireNames(st *Netlist) []string {
	names := st.InputNames()
	sort.Strings(names)
	return names
}
