package netlist

import (
	"fmt"
	"sort"
)

// Optimize returns a functionally equivalent netlist with constants
// folded through the logic, algebraic identities applied (x AND x = x,
// x XOR x = 0, muxes with constant selects collapsed, ...), structurally
// identical gates shared, and unreachable combinational logic removed.
//
// Port order and names are preserved exactly. Flip-flops are never
// removed: their state is externally observable through readback (the
// paper's preemption mechanism), so "dead" state is still state.
func Optimize(nl *Netlist) *Netlist {
	b := NewBuilder(nl.Name)

	// val is the optimized form of an original node: a constant or a node
	// in the new netlist.
	type val struct {
		isConst bool
		c       bool
		id      NodeID
	}
	vals := make([]val, len(nl.Nodes))
	have := make([]bool, len(nl.Nodes))

	// Structural hashing: identical (kind, fanins) gates share one node.
	cse := map[string]NodeID{}
	hashed := func(kind Kind, commutative bool, fanins ...NodeID) NodeID {
		ids := append([]NodeID(nil), fanins...)
		if commutative {
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		}
		key := fmt.Sprintf("%d:%v", kind, ids)
		if id, ok := cse[key]; ok {
			return id
		}
		var id NodeID
		switch kind {
		case KindNot:
			id = b.Not(ids[0])
		case KindAnd:
			id = b.And(ids[0], ids[1])
		case KindOr:
			id = b.Or(ids[0], ids[1])
		case KindXor:
			id = b.Xor(ids[0], ids[1])
		case KindNand:
			id = b.Nand(ids[0], ids[1])
		case KindNor:
			id = b.Nor(ids[0], ids[1])
		case KindMux:
			// Mux is not commutative; ids arrive unsorted.
			id = b.Mux(fanins[0], fanins[1], fanins[2])
			key = fmt.Sprintf("%d:%v", kind, fanins)
		default:
			panic("netlist: unhashable kind")
		}
		cse[key] = id
		return id
	}

	constVal := func(c bool) val { return val{isConst: true, c: c} }
	// materialize turns a val into a node id (creating a shared constant
	// node when needed).
	var const0, const1 NodeID
	var haveC0, haveC1 bool
	materialize := func(v val) NodeID {
		if !v.isConst {
			return v.id
		}
		if v.c {
			if !haveC1 {
				const1, haveC1 = b.Const(true), true
			}
			return const1
		}
		if !haveC0 {
			const0, haveC0 = b.Const(false), true
		}
		return const0
	}
	notOf := func(v val) val {
		if v.isConst {
			return constVal(!v.c)
		}
		return val{id: hashed(KindNot, false, v.id)}
	}

	// Pre-create flip-flops (their D inputs may form loops).
	setD := map[NodeID]func(NodeID){}
	for _, id := range nl.DFFs {
		q, set := feedback(b, nl.Nodes[id].Init)
		vals[id] = val{id: q}
		have[id] = true
		setD[id] = set
	}

	// resolve follows Buf/Output transparency in the original netlist.
	var valOf func(id NodeID) val
	valOf = func(id NodeID) val {
		nd := &nl.Nodes[id]
		if nd.Kind == KindBuf || nd.Kind == KindOutput {
			return valOf(nd.Fanin[0])
		}
		if !have[id] {
			panic(fmt.Sprintf("netlist: optimize visited node %d before its fanins", id))
		}
		return vals[id]
	}

	for _, id := range nl.TopoOrder() {
		nd := &nl.Nodes[id]
		if have[id] {
			continue // DFF, pre-created
		}
		var v val
		switch nd.Kind {
		case KindInput:
			v = val{id: b.Input(nd.Name)}
		case KindConst:
			v = constVal(nd.Init)
		case KindBuf, KindOutput:
			have[id] = true
			continue // transparent; resolved on demand
		case KindNot:
			v = notOf(valOf(nd.Fanin[0]))
		case KindAnd, KindNand:
			a, c := valOf(nd.Fanin[0]), valOf(nd.Fanin[1])
			switch {
			case a.isConst && !a.c, c.isConst && !c.c:
				v = constVal(false)
			case a.isConst && a.c:
				v = c
			case c.isConst && c.c:
				v = a
			case a.id == c.id:
				v = a
			default:
				v = val{id: hashed(KindAnd, true, a.id, c.id)}
			}
			if nd.Kind == KindNand {
				v = notOf(v)
			}
		case KindOr, KindNor:
			a, c := valOf(nd.Fanin[0]), valOf(nd.Fanin[1])
			switch {
			case a.isConst && a.c, c.isConst && c.c:
				v = constVal(true)
			case a.isConst && !a.c:
				v = c
			case c.isConst && !c.c:
				v = a
			case a.id == c.id:
				v = a
			default:
				v = val{id: hashed(KindOr, true, a.id, c.id)}
			}
			if nd.Kind == KindNor {
				v = notOf(v)
			}
		case KindXor:
			a, c := valOf(nd.Fanin[0]), valOf(nd.Fanin[1])
			switch {
			case a.isConst && c.isConst:
				v = constVal(a.c != c.c)
			case a.isConst && !a.c:
				v = c
			case c.isConst && !c.c:
				v = a
			case a.isConst && a.c:
				v = notOf(c)
			case c.isConst && c.c:
				v = notOf(a)
			case a.id == c.id:
				v = constVal(false)
			default:
				v = val{id: hashed(KindXor, true, a.id, c.id)}
			}
		case KindMux:
			s, z, o := valOf(nd.Fanin[0]), valOf(nd.Fanin[1]), valOf(nd.Fanin[2])
			switch {
			case s.isConst && !s.c:
				v = z
			case s.isConst && s.c:
				v = o
			case z.isConst && o.isConst && z.c == o.c:
				v = z
			case !z.isConst && !o.isConst && z.id == o.id:
				v = z
			case z.isConst && o.isConst && !z.c && o.c:
				v = s // mux(s, 0, 1) = s
			case z.isConst && o.isConst && z.c && !o.c:
				v = notOf(s) // mux(s, 1, 0) = !s
			default:
				v = val{id: hashed(KindMux, false, materialize(s), materialize(z), materialize(o))}
			}
		default:
			panic(fmt.Sprintf("netlist: optimize unknown kind %v", nd.Kind))
		}
		vals[id] = v
		have[id] = true
	}

	// Close flip-flop loops.
	for _, id := range nl.DFFs {
		setD[id](materialize(valOf(nl.Nodes[id].Fanin[0])))
	}
	// Recreate outputs in port order.
	for _, id := range nl.Outputs {
		b.Output(nl.Nodes[id].Name, materialize(valOf(nl.Nodes[id].Fanin[0])))
	}
	return sweep(b.MustBuild())
}

// sweep removes nodes unreachable from the outputs and flip-flops
// (folding can orphan shared subexpressions). Inputs always survive to
// preserve the port interface.
func sweep(nl *Netlist) *Netlist {
	keep := make([]bool, len(nl.Nodes))
	var mark func(id NodeID)
	mark = func(id NodeID) {
		if keep[id] {
			return
		}
		keep[id] = true
		for _, f := range nl.Nodes[id].Fanin {
			mark(f)
		}
	}
	for _, id := range nl.Outputs {
		mark(id)
	}
	for _, id := range nl.DFFs {
		mark(id)
	}
	for _, id := range nl.Inputs {
		keep[id] = true
	}
	all := true
	for _, k := range keep {
		if !k {
			all = false
			break
		}
	}
	if all {
		return nl
	}
	out := &Netlist{Name: nl.Name}
	remap := make([]NodeID, len(nl.Nodes))
	for i := range nl.Nodes {
		if !keep[i] {
			continue
		}
		nd := nl.Nodes[i]
		nd.ID = NodeID(len(out.Nodes))
		remap[i] = nd.ID
		nd.Fanin = append([]NodeID(nil), nd.Fanin...)
		out.Nodes = append(out.Nodes, nd)
	}
	for i := range out.Nodes {
		for k, f := range out.Nodes[i].Fanin {
			out.Nodes[i].Fanin[k] = remap[f]
		}
	}
	for _, id := range nl.Inputs {
		out.Inputs = append(out.Inputs, remap[id])
	}
	for _, id := range nl.Outputs {
		out.Outputs = append(out.Outputs, remap[id])
	}
	for _, id := range nl.DFFs {
		out.DFFs = append(out.DFFs, remap[id])
	}
	if err := out.validate(); err != nil {
		panic(fmt.Sprintf("netlist: sweep produced invalid netlist: %v", err))
	}
	if err := out.computeTopo(); err != nil {
		panic(fmt.Sprintf("netlist: sweep produced cyclic netlist: %v", err))
	}
	return out
}
