package netlist

import (
	"fmt"

	"repro/internal/rng"
)

// RandomConfig parameterizes random netlist generation for fuzz-style
// equivalence testing: the whole CAD flow (mapping, placement, routing,
// bitstream, fabric execution) is validated against the gate-level golden
// model on arbitrary circuits, not just the hand-written library.
type RandomConfig struct {
	Inputs  int
	Outputs int
	Gates   int
	// DFFProb is the probability that an internal node is a flip-flop
	// (introducing sequential feedback); 0 yields pure combinational logic.
	DFFProb float64
	// ConstProb is the probability a gate input is tied to a constant.
	ConstProb float64
}

// Random generates a structurally valid random netlist. Gate fanins are
// drawn from already-created nodes, so the combinational graph is a DAG
// by construction; flip-flops may additionally feed back to any node
// created later (sequential loops, which are legal).
func Random(src *rng.Source, cfg RandomConfig) *Netlist {
	if cfg.Inputs <= 0 {
		cfg.Inputs = 1
	}
	if cfg.Outputs <= 0 {
		cfg.Outputs = 1
	}
	b := NewBuilder(fmt.Sprintf("rand_i%d_o%d_g%d", cfg.Inputs, cfg.Outputs, cfg.Gates))
	pool := make([]NodeID, 0, cfg.Inputs+cfg.Gates)
	for i := 0; i < cfg.Inputs; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("in%d", i)))
	}
	// Pre-create flip-flops so gates can read them (their D inputs are
	// patched afterwards, closing sequential loops).
	type pendingFF struct {
		q    NodeID
		setD func(NodeID)
	}
	var ffs []pendingFF
	nFF := 0
	if cfg.DFFProb > 0 {
		nFF = int(float64(cfg.Gates) * cfg.DFFProb)
	}
	for i := 0; i < nFF; i++ {
		q, setD := feedback(b, src.Bool())
		ffs = append(ffs, pendingFF{q, setD})
		pool = append(pool, q)
	}

	pick := func() NodeID {
		if cfg.ConstProb > 0 && src.Float64() < cfg.ConstProb {
			return b.Const(src.Bool())
		}
		return pool[src.Intn(len(pool))]
	}
	for g := 0; g < cfg.Gates; g++ {
		var id NodeID
		switch src.Intn(7) {
		case 0:
			id = b.And(pick(), pick())
		case 1:
			id = b.Or(pick(), pick())
		case 2:
			id = b.Xor(pick(), pick())
		case 3:
			id = b.Nand(pick(), pick())
		case 4:
			id = b.Nor(pick(), pick())
		case 5:
			id = b.Not(pick())
		default:
			id = b.Mux(pick(), pick(), pick())
		}
		pool = append(pool, id)
	}
	for _, ff := range ffs {
		ff.setD(pool[src.Intn(len(pool))])
	}
	for o := 0; o < cfg.Outputs; o++ {
		b.Output(fmt.Sprintf("out%d", o), pool[src.Intn(len(pool))])
	}
	return b.MustBuild()
}
