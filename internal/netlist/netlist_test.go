package netlist

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("t")
	a := b.Input("a")
	c := b.Input("c")
	b.Output("y", b.And(a, c))
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumInputs() != 2 || nl.NumOutputs() != 1 || nl.NumGates() != 1 {
		t.Fatalf("unexpected shape: %v", nl.Stats())
	}
	if nl.IsSequential() {
		t.Fatal("combinational netlist reports sequential")
	}
}

func TestBuilderReuseAfterBuildPanics(t *testing.T) {
	b := NewBuilder("t")
	b.Output("y", b.Input("a"))
	b.MustBuild()
	defer func() {
		if recover() == nil {
			t.Fatal("builder reuse did not panic")
		}
	}()
	b.Input("z")
}

func TestDuplicatePortRejected(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("a")
	b.Input("a")
	b.Output("y", x)
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate input port accepted")
	}
}

func TestReadFromOutputRejected(t *testing.T) {
	b := NewBuilder("t")
	a := b.Input("a")
	y := b.Output("y", a)
	b.Output("z", b.Not(y))
	if _, err := b.Build(); err == nil {
		t.Fatal("reading from an output port was accepted")
	}
}

func TestCombinationalCycleRejected(t *testing.T) {
	b := NewBuilder("t")
	a := b.Input("a")
	// Manually create a cycle: n1 = AND(a, n2), n2 = NOT(n1).
	n1 := b.add(KindAnd, "", false, a, 0) // placeholder second fanin
	n2 := b.Not(n1)
	b.nl.Nodes[n1].Fanin[1] = n2
	b.Output("y", n2)
	if _, err := b.Build(); err == nil {
		t.Fatal("combinational cycle accepted")
	}
}

func TestSequentialLoopAccepted(t *testing.T) {
	// A DFF in a feedback loop is legal (that is what sequential logic is).
	b := NewBuilder("t")
	q, setD := feedback(b, false)
	setD(b.Not(q))
	b.Output("y", q)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !nl.IsSequential() || nl.NumDFFs() != 1 {
		t.Fatal("DFF loop netlist shape wrong")
	}
	// Toggle flip-flop: 0,1,0,1...
	s := NewSimulator(nl)
	want := []bool{false, true, false, true}
	for i, w := range want {
		out := s.Step(nil)
		if out[0] != w {
			t.Fatalf("toggle cycle %d = %v, want %v", i, out[0], w)
		}
	}
}

func TestDepth(t *testing.T) {
	b := NewBuilder("t")
	a := b.Input("a")
	c := b.Input("c")
	d := b.Input("d")
	b.Output("y", b.And(b.And(a, c), d)) // depth 2
	nl := b.MustBuild()
	if got := nl.Depth(); got != 2 {
		t.Fatalf("depth = %d, want 2", got)
	}
}

func TestKindString(t *testing.T) {
	if KindAnd.String() != "and" || KindDFF.String() != "dff" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind string")
	}
}

func TestPortIndex(t *testing.T) {
	nl := Adder(4)
	if nl.PortIndex("cin", false) != 8 {
		t.Fatalf("cin index = %d", nl.PortIndex("cin", false))
	}
	if nl.PortIndex("cout", true) != 4 {
		t.Fatalf("cout index = %d", nl.PortIndex("cout", true))
	}
	if nl.PortIndex("nope", false) != -1 {
		t.Fatal("missing port did not return -1")
	}
}

func TestFanouts(t *testing.T) {
	b := NewBuilder("t")
	a := b.Input("a")
	n := b.Not(a)
	b.Output("y", n)
	b.Output("z", n)
	nl := b.MustBuild()
	fo := nl.Fanouts()
	if len(fo[n]) != 2 {
		t.Fatalf("fanout of NOT = %d, want 2", len(fo[n]))
	}
	if len(fo[a]) != 1 {
		t.Fatalf("fanout of input = %d, want 1", len(fo[a]))
	}
}

func TestInputOutputNames(t *testing.T) {
	nl := Adder(2)
	in := nl.InputNames()
	if in[0] != "a[0]" || in[4] != "cin" {
		t.Fatalf("input names: %v", in)
	}
	out := nl.OutputNames()
	if out[len(out)-1] != "cout" {
		t.Fatalf("output names: %v", out)
	}
	sorted := nl.SortedPortNames()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			t.Fatal("SortedPortNames not sorted")
		}
	}
}

func TestStatsString(t *testing.T) {
	nl := Adder(4)
	s := nl.String()
	if !strings.Contains(s, "adder4") || !strings.Contains(s, "depth") {
		t.Fatalf("bad String: %q", s)
	}
}

// --- functional correctness of library circuits against Go arithmetic ---

func evalComb(t *testing.T, nl *Netlist, inputs []bool) []bool {
	t.Helper()
	return NewSimulator(nl).Eval(inputs)
}

func TestAdderExhaustiveSmall(t *testing.T) {
	nl := Adder(3)
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			for c := uint64(0); c < 2; c++ {
				in := append(UintToBools(a, 3), UintToBools(b, 3)...)
				in = append(in, c == 1)
				out := evalComb(t, nl, in)
				got := BoolsToUint(out)
				want := a + b + c // sum[0..2] + cout at bit 3
				if got != want {
					t.Fatalf("adder3(%d,%d,%d) = %d, want %d", a, b, c, got, want)
				}
			}
		}
	}
}

func TestAdderProperty(t *testing.T) {
	nl := Adder(16)
	s := NewSimulator(nl)
	f := func(a, b uint16, cin bool) bool {
		in := append(UintToBools(uint64(a), 16), UintToBools(uint64(b), 16)...)
		c := uint64(0)
		if cin {
			c = 1
		}
		in = append(in, cin)
		out := s.Eval(in)
		return BoolsToUint(out) == uint64(a)+uint64(b)+c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubtractorProperty(t *testing.T) {
	nl := Subtractor(16)
	s := NewSimulator(nl)
	f := func(a, b uint16) bool {
		in := append(UintToBools(uint64(a), 16), UintToBools(uint64(b), 16)...)
		out := s.Eval(in)
		diff := uint16(BoolsToUint(out[:16]))
		borrow := out[16]
		return diff == a-b && borrow == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComparatorProperty(t *testing.T) {
	nl := Comparator(12)
	s := NewSimulator(nl)
	f := func(aRaw, bRaw uint16) bool {
		a, b := uint64(aRaw)&0xfff, uint64(bRaw)&0xfff
		in := append(UintToBools(a, 12), UintToBools(b, 12)...)
		out := s.Eval(in)
		return out[0] == (a == b) && out[1] == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplierExhaustive4(t *testing.T) {
	nl := Multiplier(4)
	s := NewSimulator(nl)
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			in := append(UintToBools(a, 4), UintToBools(b, 4)...)
			got := BoolsToUint(s.Eval(in))
			if got != a*b {
				t.Fatalf("mul4(%d,%d) = %d, want %d", a, b, got, a*b)
			}
		}
	}
}

func TestPopCountProperty(t *testing.T) {
	nl := PopCount(16)
	s := NewSimulator(nl)
	f := func(x uint16) bool {
		got := BoolsToUint(s.Eval(UintToBools(uint64(x), 16)))
		want := uint64(0)
		for v := x; v != 0; v &= v - 1 {
			want++
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParityProperty(t *testing.T) {
	nl := Parity(32)
	s := NewSimulator(nl)
	f := func(x uint32) bool {
		out := s.Eval(UintToBools(uint64(x), 32))
		want := false
		for v := x; v != 0; v &= v - 1 {
			want = !want
		}
		return out[0] == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMuxTreeExhaustive(t *testing.T) {
	nl := MuxTree(3) // 8:1
	s := NewSimulator(nl)
	for d := uint64(0); d < 256; d += 37 {
		for sel := uint64(0); sel < 8; sel++ {
			in := append(UintToBools(d, 8), UintToBools(sel, 3)...)
			out := s.Eval(in)
			want := d&(1<<sel) != 0
			if out[0] != want {
				t.Fatalf("mux8(d=%08b, sel=%d) = %v, want %v", d, sel, out[0], want)
			}
		}
	}
}

func TestPriorityEncoderExhaustive(t *testing.T) {
	nl := PriorityEncoder(8)
	s := NewSimulator(nl)
	for x := uint64(0); x < 256; x++ {
		out := s.Eval(UintToBools(x, 8))
		idx := BoolsToUint(out[:3])
		valid := out[3]
		if x == 0 {
			if valid {
				t.Fatal("prienc(0) reports valid")
			}
			continue
		}
		want := uint64(0)
		for i := 7; i >= 0; i-- {
			if x&(1<<uint(i)) != 0 {
				want = uint64(i)
				break
			}
		}
		if !valid || idx != want {
			t.Fatalf("prienc(%08b) = (%d,%v), want (%d,true)", x, idx, valid, want)
		}
	}
}

func TestBarrelShifterProperty(t *testing.T) {
	nl := BarrelShifter(16)
	s := NewSimulator(nl)
	f := func(x uint16, shRaw uint8) bool {
		sh := uint(shRaw % 16)
		in := append(UintToBools(uint64(x), 16), UintToBools(uint64(sh), 4)...)
		got := uint16(BoolsToUint(s.Eval(in)))
		want := x<<sh | x>>(16-sh)
		if sh == 0 {
			want = x
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestALUProperty(t *testing.T) {
	nl := ALU(8)
	s := NewSimulator(nl)
	f := func(a, b, opRaw uint8) bool {
		op := uint64(opRaw % 4)
		in := append(UintToBools(uint64(a), 8), UintToBools(uint64(b), 8)...)
		in = append(in, UintToBools(op, 2)...)
		got := uint8(BoolsToUint(s.Eval(in)))
		var want uint8
		switch op {
		case 0:
			want = a & b
		case 1:
			want = a | b
		case 2:
			want = a ^ b
		case 3:
			want = a + b
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrayEncoderProperty(t *testing.T) {
	nl := GrayEncoder(8)
	s := NewSimulator(nl)
	f := func(x uint8) bool {
		got := uint8(BoolsToUint(s.Eval(UintToBools(uint64(x), 8))))
		return got == x^(x>>1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- sequential circuits ---

func TestCounterCounts(t *testing.T) {
	nl := Counter(8)
	s := NewSimulator(nl)
	for i := 0; i < 300; i++ {
		out := s.Step([]bool{true})
		if got := BoolsToUint(out); got != uint64(i%256) {
			t.Fatalf("counter cycle %d = %d, want %d", i, got, i%256)
		}
	}
}

func TestCounterEnable(t *testing.T) {
	nl := Counter(4)
	s := NewSimulator(nl)
	s.Step([]bool{true})  // -> 1
	s.Step([]bool{false}) // hold
	out := s.Step([]bool{false})
	if got := BoolsToUint(out); got != 1 {
		t.Fatalf("counter with en=0 moved: %d", got)
	}
}

func TestLFSRMaximalLength(t *testing.T) {
	// x^16 + x^14 + x^13 + x^11 + 1 is a maximal-length polynomial: with
	// taps {15,13,12,10} the 16-bit Fibonacci LFSR has period 2^16-1.
	nl := LFSR(16, []int{15, 13, 12, 10})
	s := NewSimulator(nl)
	seen := make(map[uint64]bool)
	state := BoolsToUint(s.Eval([]bool{true})[:16])
	start := state
	period := 0
	for {
		s.Step([]bool{true})
		state = BoolsToUint(s.Eval([]bool{true})[:16])
		period++
		if state == start {
			break
		}
		if seen[state] {
			t.Fatalf("LFSR revisited state %x before returning to start", state)
		}
		seen[state] = true
		if period > 1<<16 {
			t.Fatal("LFSR period exceeds 2^16")
		}
	}
	if period != 1<<16-1 {
		t.Fatalf("LFSR period = %d, want %d", period, 1<<16-1)
	}
}

func TestCRCMatchesSoftware(t *testing.T) {
	// Serial CRC-8 (poly 0x07) over a byte stream, MSB first, must match a
	// software bitwise implementation.
	nl := CRC(8, 0x07)
	s := NewSimulator(nl)
	data := []byte{0x31, 0x32, 0x33, 0xff, 0x00, 0xa5}
	var sw uint8
	for _, by := range data {
		for bit := 7; bit >= 0; bit-- {
			din := by&(1<<uint(bit)) != 0
			s.Step([]bool{din})
			// software: shift left, xor poly when (msb ^ din) was set
			fb := (sw&0x80 != 0) != din
			sw <<= 1
			if fb {
				sw ^= 0x07
			}
		}
	}
	hw := uint8(BoolsToUint(s.Eval([]bool{false})))
	if hw != sw {
		t.Fatalf("CRC hw=%02x sw=%02x", hw, sw)
	}
}

func TestAccumulator(t *testing.T) {
	nl := Accumulator(16)
	s := NewSimulator(nl)
	var want uint16
	vals := []uint16{5, 1000, 65535, 3, 12345}
	for _, v := range vals {
		in := append([]bool{true}, UintToBools(uint64(v), 16)...)
		s.Step(in)
		want += v
	}
	got := uint16(BoolsToUint(s.Eval(append([]bool{false}, UintToBools(0, 16)...))))
	if got != want {
		t.Fatalf("accumulator = %d, want %d", got, want)
	}
}

func TestShiftRegister(t *testing.T) {
	nl := ShiftRegister(8)
	s := NewSimulator(nl)
	pattern := []bool{true, false, true, true, false, false, true, false}
	for _, b := range pattern {
		s.Step([]bool{b})
	}
	out := s.Eval([]bool{false})
	// After 8 shifts, q[7] holds the first bit shifted in.
	for i := 0; i < 8; i++ {
		if out[7-i] != pattern[i] {
			t.Fatalf("shift register content wrong at bit %d: %v", i, out)
		}
	}
}

func TestStateSaveRestore(t *testing.T) {
	// The observability/controllability requirement from the paper: saving
	// DFF state and restoring it must resume the computation exactly.
	nl := Counter(8)
	s := NewSimulator(nl)
	for i := 0; i < 37; i++ {
		s.Step([]bool{true})
	}
	saved := s.State()
	// Run ahead, then restore.
	for i := 0; i < 11; i++ {
		s.Step([]bool{true})
	}
	s.SetState(saved)
	got := BoolsToUint(s.Eval([]bool{false}))
	if got != 37 {
		t.Fatalf("restored counter = %d, want 37", got)
	}
}

func TestSetStateWrongLengthPanics(t *testing.T) {
	s := NewSimulator(Counter(4))
	defer func() {
		if recover() == nil {
			t.Fatal("SetState with wrong length did not panic")
		}
	}()
	s.SetState([]bool{true})
}

func TestEvalWrongInputCountPanics(t *testing.T) {
	s := NewSimulator(Adder(4))
	defer func() {
		if recover() == nil {
			t.Fatal("Eval with wrong input count did not panic")
		}
	}()
	s.Eval([]bool{true})
}

func TestRunSequence(t *testing.T) {
	s := NewSimulator(Counter(4))
	seq := [][]bool{{true}, {true}, {true}}
	outs := s.Run(seq)
	if len(outs) != 3 || BoolsToUint(outs[2]) != 2 {
		t.Fatalf("Run outputs wrong: %v", outs)
	}
}

func TestRegistryAllBuild(t *testing.T) {
	for name, gen := range Registry() {
		nl := gen()
		if nl == nil || len(nl.Nodes) == 0 {
			t.Fatalf("registry circuit %q is empty", name)
		}
		if nl.NumInputs() == 0 && nl.NumDFFs() == 0 {
			t.Fatalf("registry circuit %q has no inputs", name)
		}
		if nl.NumOutputs() == 0 {
			t.Fatalf("registry circuit %q has no outputs", name)
		}
	}
}

func TestBoolsUintRoundTrip(t *testing.T) {
	f := func(v uint64, wRaw uint8) bool {
		w := int(wRaw%64) + 1
		masked := v & (1<<uint(w) - 1)
		return BoolsToUint(UintToBools(masked, w)) == masked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimulateMul8(b *testing.B) {
	nl := Multiplier(8)
	s := NewSimulator(nl)
	in := append(UintToBools(0xa5, 8), UintToBools(0x3c, 8)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Eval(in)
	}
}
