package netlist

import "fmt"

// Third library tier: wide-datapath arithmetic with classic shift-and-
// subtract structure. These are the largest combinational circuits in the
// library and the natural stress cases for segmentation and paging.

// subIfGE conditionally subtracts d from r when r >= d: it returns the
// selected result and the "subtracted" flag. Both buses must have equal
// width.
func subIfGE(b *Builder, r, d []NodeID) (out []NodeID, did NodeID) {
	notD := make([]NodeID, len(d))
	for i := range d {
		notD[i] = b.Not(d[i])
	}
	diff, carry := addBits(b, r, notD, b.Const(true)) // r - d; carry==1 iff r >= d
	return muxBus(b, carry, r, diff), carry
}

// Divider returns a width-bit unsigned restoring divider: inputs n
// (dividend) and d (divisor); outputs q (quotient) and r (remainder).
// Division by zero yields q = all ones and r = n, the conventional
// all-comparisons-succeed result of the restoring array.
func Divider(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("div%d", width))
	n := b.InputBus("n", width)
	d := b.InputBus("d", width)
	zero := b.Const(false)

	// Remainder register, one bit wider than the divisor to absorb the
	// shifted-in bit before the trial subtract.
	rem := make([]NodeID, width+1)
	for i := range rem {
		rem[i] = zero
	}
	dExt := make([]NodeID, width+1)
	copy(dExt, d)
	dExt[width] = zero

	q := make([]NodeID, width)
	for i := width - 1; i >= 0; i-- {
		// rem = (rem << 1) | n[i]
		shifted := make([]NodeID, width+1)
		shifted[0] = n[i]
		copy(shifted[1:], rem[:width])
		var did NodeID
		rem, did = subIfGE(b, shifted, dExt)
		q[i] = did
	}
	b.OutputBus("q", q)
	b.OutputBus("r", rem[:width])
	return b.MustBuild()
}

// BinToBCD returns a combinational double-dabble converter from an 8-bit
// binary input to three BCD digits (ones, tens, hundreds).
func BinToBCD8() *Netlist {
	b := NewBuilder("bintobcd8")
	in := b.InputBus("bin", 8)
	zero := b.Const(false)

	// 12 BCD bits (3 digits), shifted in MSB-first with the add-3 fixup.
	bcd := make([]NodeID, 12)
	for i := range bcd {
		bcd[i] = zero
	}
	three := []NodeID{b.Const(true), b.Const(true), zero, zero}
	for i := 7; i >= 0; i-- {
		// Fix up each digit >= 5 by adding 3.
		for dig := 0; dig < 3; dig++ {
			nib := bcd[dig*4 : dig*4+4]
			// ge5 = nib >= 5 = b3 | (b2 & (b1 | b0))
			ge5 := b.Or(nib[3], b.And(nib[2], b.Or(nib[1], nib[0])))
			sum, _ := addBits(b, nib, three, zero)
			for k := 0; k < 4; k++ {
				bcd[dig*4+k] = b.Mux(ge5, nib[k], sum[k])
			}
		}
		// Shift left by one, shifting in the next binary bit.
		next := make([]NodeID, 12)
		next[0] = in[i]
		copy(next[1:], bcd[:11])
		bcd = next
	}
	b.OutputBus("ones", bcd[0:4])
	b.OutputBus("tens", bcd[4:8])
	b.OutputBus("hundreds", bcd[8:12])
	return b.MustBuild()
}

func init() {
	// Registered here rather than in Registry2 to keep each tier's file
	// self-contained; Registry() merges everything.
	registryExtra["div8"] = func() *Netlist { return Divider(8) }
	registryExtra["div16"] = func() *Netlist { return Divider(16) }
	registryExtra["bintobcd8"] = BinToBCD8
}

// registryExtra collects generators registered by init functions of the
// later library tiers.
var registryExtra = map[string]func() *Netlist{}
