package netlist

import (
	"testing"

	"repro/internal/rng"
)

// checkSame drives both netlists with identical stimulus and requires
// identical outputs.
func checkSame(t *testing.T, a, b *Netlist, cycles int, seed uint64) {
	t.Helper()
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() {
		t.Fatalf("port shape changed: %v vs %v", a.Stats(), b.Stats())
	}
	for i, n := range a.InputNames() {
		if b.InputNames()[i] != n {
			t.Fatalf("input %d renamed %q -> %q", i, n, b.InputNames()[i])
		}
	}
	sa, sb := NewSimulator(a), NewSimulator(b)
	src := rng.New(seed)
	for c := 0; c < cycles; c++ {
		in := make([]bool, a.NumInputs())
		for i := range in {
			in[i] = src.Bool()
		}
		var wa, wb []bool
		if a.IsSequential() || b.IsSequential() {
			wa, wb = sa.Step(in), sb.Step(in)
		} else {
			wa, wb = sa.Eval(in), sb.Eval(in)
		}
		for o := range wa {
			if wa[o] != wb[o] {
				t.Fatalf("cycle %d output %d differs after optimization", c, o)
			}
		}
	}
}

func TestOptimizePreservesLibrary(t *testing.T) {
	for name, gen := range Registry() {
		nl := gen()
		opt := Optimize(nl)
		checkSame(t, nl, opt, 48, 5)
		if opt.NumGates() > nl.NumGates() {
			t.Fatalf("%s: optimization grew gates %d -> %d", name, nl.NumGates(), opt.NumGates())
		}
		if opt.NumDFFs() != nl.NumDFFs() {
			t.Fatalf("%s: optimization changed FF count", name)
		}
	}
}

func TestOptimizeRandomEquivalence(t *testing.T) {
	cfgs := []RandomConfig{
		{Inputs: 6, Outputs: 4, Gates: 40, ConstProb: 0.3},
		{Inputs: 8, Outputs: 6, Gates: 80, ConstProb: 0.15, DFFProb: 0.25},
		{Inputs: 3, Outputs: 3, Gates: 20, ConstProb: 0.5},
		{Inputs: 10, Outputs: 8, Gates: 120},
	}
	for ci, cfg := range cfgs {
		for rep := 0; rep < 6; rep++ {
			src := rng.New(uint64(100*ci + rep))
			nl := Random(src, cfg)
			opt := Optimize(nl)
			checkSame(t, nl, opt, 32, uint64(rep))
		}
	}
}

func TestOptimizeFoldsConstants(t *testing.T) {
	b := NewBuilder("folds")
	a := b.Input("a")
	one := b.Const(true)
	zero := b.Const(false)
	b.Output("and1", b.And(a, one))         // = a
	b.Output("and0", b.And(a, zero))        // = 0
	b.Output("or1", b.Or(a, one))           // = 1
	b.Output("xorx", b.Xor(a, a))           // = 0
	b.Output("mux", b.Mux(one, zero, a))    // = a
	b.Output("muxsel", b.Mux(a, zero, one)) // = a
	nl := b.MustBuild()
	opt := Optimize(nl)
	checkSame(t, nl, opt, 8, 3)
	if opt.NumGates() != 0 {
		t.Fatalf("constant circuit kept %d gates", opt.NumGates())
	}
}

func TestOptimizeSharesCommonSubexpressions(t *testing.T) {
	b := NewBuilder("cse")
	x := b.Input("x")
	y := b.Input("y")
	// The same AND built twice, plus commuted: all one gate after CSE.
	b.Output("p", b.And(x, y))
	b.Output("q", b.And(x, y))
	b.Output("r", b.And(y, x))
	nl := b.MustBuild()
	opt := Optimize(nl)
	checkSame(t, nl, opt, 8, 9)
	if opt.NumGates() != 1 {
		t.Fatalf("CSE left %d gates, want 1", opt.NumGates())
	}
}

func TestOptimizeRemovesDeadLogic(t *testing.T) {
	b := NewBuilder("dead")
	x := b.Input("x")
	y := b.Input("y")
	_ = b.Xor(b.And(x, y), y) // never used
	b.Output("z", b.Not(x))
	nl := b.MustBuild()
	opt := Optimize(nl)
	if opt.NumGates() != 1 {
		t.Fatalf("dead logic survived: %d gates", opt.NumGates())
	}
	checkSame(t, nl, opt, 8, 4)
}

func TestOptimizeKeepsAllFFs(t *testing.T) {
	// A flip-flop disconnected from outputs still holds observable state.
	b := NewBuilder("hiddenstate")
	q, setD := feedback(b, false)
	setD(b.Not(q))
	x := b.Input("x")
	b.Output("y", x)
	nl := b.MustBuild()
	opt := Optimize(nl)
	if opt.NumDFFs() != 1 {
		t.Fatalf("observable state removed: %d FFs", opt.NumDFFs())
	}
	checkSame(t, nl, opt, 8, 6)
}

func TestOptimizeIdempotent(t *testing.T) {
	src := rng.New(42)
	nl := Random(src, RandomConfig{Inputs: 8, Outputs: 6, Gates: 60, ConstProb: 0.2, DFFProb: 0.2})
	once := Optimize(nl)
	twice := Optimize(once)
	if twice.NumGates() > once.NumGates() {
		t.Fatalf("second pass grew the netlist: %d -> %d", once.NumGates(), twice.NumGates())
	}
	checkSame(t, once, twice, 24, 8)
}

func TestOptimizeMuxIdentities(t *testing.T) {
	b := NewBuilder("muxid")
	s := b.Input("s")
	a := b.Input("a")
	b.Output("same", b.Mux(s, a, a)) // = a regardless of s
	nl := b.MustBuild()
	opt := Optimize(nl)
	if opt.NumGates() != 0 {
		t.Fatalf("mux(s,a,a) not collapsed: %d gates", opt.NumGates())
	}
	checkSame(t, nl, opt, 8, 7)
}

func TestRandomNetlistShapes(t *testing.T) {
	src := rng.New(1)
	nl := Random(src, RandomConfig{Inputs: 5, Outputs: 4, Gates: 30, DFFProb: 0.3})
	if nl.NumInputs() != 5 || nl.NumOutputs() != 4 {
		t.Fatalf("ports %d/%d", nl.NumInputs(), nl.NumOutputs())
	}
	if !nl.IsSequential() {
		t.Fatal("DFFProb 0.3 produced no flip-flops")
	}
	// Degenerate configs are clamped.
	tiny := Random(rng.New(2), RandomConfig{})
	if tiny.NumInputs() != 1 || tiny.NumOutputs() != 1 {
		t.Fatal("clamping failed")
	}
}

func TestOptimizeReducesConstHeavyCircuits(t *testing.T) {
	src := rng.New(11)
	nl := Random(src, RandomConfig{Inputs: 6, Outputs: 4, Gates: 100, ConstProb: 0.4})
	opt := Optimize(nl)
	if opt.NumGates() >= nl.NumGates() {
		t.Fatalf("no reduction on const-heavy circuit: %d -> %d", nl.NumGates(), opt.NumGates())
	}
	// Typically the reduction is drastic.
	if float64(opt.NumGates()) > 0.8*float64(nl.NumGates()) {
		t.Logf("weak reduction: %d -> %d", nl.NumGates(), opt.NumGates())
	}
}
