package netlist

import (
	"math/bits"
	"sort"
	"testing"
	"testing/quick"
)

func TestCLAAdderProperty(t *testing.T) {
	s := NewSimulator(CLAAdder(16))
	f := func(a, b uint16, cin bool) bool {
		in := append(UintToBools(uint64(a), 16), UintToBools(uint64(b), 16)...)
		in = append(in, cin)
		c := uint64(0)
		if cin {
			c = 1
		}
		return BoolsToUint(s.Eval(in)) == uint64(a)+uint64(b)+c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCLAShallowerThanRipple(t *testing.T) {
	if CLAAdder(32).Depth() >= Adder(32).Depth() {
		t.Fatalf("CLA depth %d not shallower than ripple %d", CLAAdder(32).Depth(), Adder(32).Depth())
	}
}

func TestCarrySelectAdderProperty(t *testing.T) {
	s := NewSimulator(CarrySelectAdder(16, 4))
	f := func(a, b uint16, cin bool) bool {
		in := append(UintToBools(uint64(a), 16), UintToBools(uint64(b), 16)...)
		in = append(in, cin)
		c := uint64(0)
		if cin {
			c = 1
		}
		return BoolsToUint(s.Eval(in)) == uint64(a)+uint64(b)+c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCarrySelectOddBlocks(t *testing.T) {
	// Width not divisible by the block size exercises the tail block.
	s := NewSimulator(CarrySelectAdder(10, 3))
	for a := uint64(0); a < 1024; a += 37 {
		for b := uint64(0); b < 1024; b += 53 {
			in := append(UintToBools(a, 10), UintToBools(b, 10)...)
			in = append(in, false)
			if got := BoolsToUint(s.Eval(in)); got != a+b {
				t.Fatalf("csel10(%d,%d) = %d", a, b, got)
			}
		}
	}
}

func TestAbsDiffProperty(t *testing.T) {
	s := NewSimulator(AbsDiff(8))
	f := func(a, b uint8) bool {
		in := append(UintToBools(uint64(a), 8), UintToBools(uint64(b), 8)...)
		got := uint8(BoolsToUint(s.Eval(in)))
		want := a - b
		if b > a {
			want = b - a
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxProperty(t *testing.T) {
	s := NewSimulator(MinMax(8))
	f := func(a, b uint8) bool {
		in := append(UintToBools(uint64(a), 8), UintToBools(uint64(b), 8)...)
		out := s.Eval(in)
		mn := uint8(BoolsToUint(out[:8]))
		mx := uint8(BoolsToUint(out[8:]))
		wantMn, wantMx := a, b
		if b < a {
			wantMn, wantMx = b, a
		}
		return mn == wantMn && mx == wantMx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCLZExhaustive(t *testing.T) {
	s := NewSimulator(CLZ(16))
	for x := uint64(0); x < 1<<16; x += 7 {
		got := BoolsToUint(s.Eval(UintToBools(x, 16)))
		want := uint64(bits.LeadingZeros16(uint16(x)))
		if got != want {
			t.Fatalf("clz(%#x) = %d, want %d", x, got, want)
		}
	}
	// Edge cases not hit by the stride.
	for _, x := range []uint64{0, 1, 1 << 15, 0xffff} {
		got := BoolsToUint(s.Eval(UintToBools(x, 16)))
		if got != uint64(bits.LeadingZeros16(uint16(x))) {
			t.Fatalf("clz(%#x) = %d", x, got)
		}
	}
}

// hammingEncode is the software golden model.
func hammingEncode(d uint8) uint8 {
	d1, d2, d3, d4 := d&1, (d>>1)&1, (d>>2)&1, (d>>3)&1
	p1 := d1 ^ d2 ^ d4
	p2 := d1 ^ d3 ^ d4
	p4 := d2 ^ d3 ^ d4
	return p1 | p2<<1 | d1<<2 | p4<<3 | d2<<4 | d3<<5 | d4<<6
}

func TestHammingEncoderExhaustive(t *testing.T) {
	s := NewSimulator(Hamming74Encoder())
	for d := uint64(0); d < 16; d++ {
		got := BoolsToUint(s.Eval(UintToBools(d, 4)))
		if got != uint64(hammingEncode(uint8(d))) {
			t.Fatalf("encode(%d) = %07b, want %07b", d, got, hammingEncode(uint8(d)))
		}
	}
}

func TestHammingRoundTripAndCorrection(t *testing.T) {
	dec := NewSimulator(Hamming74Decoder())
	for d := uint64(0); d < 16; d++ {
		code := uint64(hammingEncode(uint8(d)))
		// Clean word decodes with no error flag.
		out := dec.Eval(UintToBools(code, 7))
		if BoolsToUint(out[:4]) != d || out[4] {
			t.Fatalf("clean decode(%d) = %d err=%v", d, BoolsToUint(out[:4]), out[4])
		}
		// Every single-bit error is corrected and flagged.
		for bit := 0; bit < 7; bit++ {
			corrupted := code ^ (1 << uint(bit))
			out := dec.Eval(UintToBools(corrupted, 7))
			if BoolsToUint(out[:4]) != d {
				t.Fatalf("data %d, flip bit %d: decoded %d", d, bit, BoolsToUint(out[:4]))
			}
			if !out[4] {
				t.Fatalf("data %d, flip bit %d: error not flagged", d, bit)
			}
		}
	}
}

func TestSevenSegExhaustive(t *testing.T) {
	patterns := [16]uint8{
		0x3F, 0x06, 0x5B, 0x4F, 0x66, 0x6D, 0x7D, 0x07,
		0x7F, 0x6F, 0x77, 0x7C, 0x39, 0x5E, 0x79, 0x71,
	}
	s := NewSimulator(SevenSeg())
	for v := uint64(0); v < 16; v++ {
		got := BoolsToUint(s.Eval(UintToBools(v, 4)))
		if got != uint64(patterns[v]) {
			t.Fatalf("sevenseg(%x) = %07b, want %07b", v, got, patterns[v])
		}
	}
}

func TestSortNet4Property(t *testing.T) {
	s := NewSimulator(SortNet4(4))
	f := func(raw [4]uint8) bool {
		var in []bool
		vals := make([]int, 4)
		for i, r := range raw {
			vals[i] = int(r % 16)
			in = append(in, UintToBools(uint64(vals[i]), 4)...)
		}
		out := s.Eval(in)
		sort.Ints(vals)
		for i := 0; i < 4; i++ {
			got := int(BoolsToUint(out[i*4 : (i+1)*4]))
			if got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJohnsonCounterSequence(t *testing.T) {
	s := NewSimulator(JohnsonCounter(4))
	want := []uint64{0b0000, 0b0001, 0b0011, 0b0111, 0b1111, 0b1110, 0b1100, 0b1000, 0b0000}
	for i, w := range want {
		out := s.Step([]bool{true})
		if got := BoolsToUint(out); got != w {
			t.Fatalf("johnson step %d = %04b, want %04b", i, got, w)
		}
	}
}

func TestJohnsonHoldsWhenDisabled(t *testing.T) {
	s := NewSimulator(JohnsonCounter(4))
	s.Step([]bool{true})
	s.Step([]bool{true}) // state 0b0011 next
	a := BoolsToUint(s.Step([]bool{false}))
	b := BoolsToUint(s.Step([]bool{false}))
	if a != b {
		t.Fatalf("disabled johnson moved: %04b -> %04b", a, b)
	}
}

func TestGrayCounterAdjacency(t *testing.T) {
	// Consecutive Gray outputs differ in exactly one bit, over a full period.
	s := NewSimulator(GrayCounter(4))
	prev := BoolsToUint(s.Step([]bool{true}))
	for i := 0; i < 16; i++ {
		cur := BoolsToUint(s.Step([]bool{true}))
		if bits.OnesCount64(prev^cur) != 1 {
			t.Fatalf("gray step %d: %04b -> %04b differ in %d bits", i, prev, cur, bits.OnesCount64(prev^cur))
		}
		prev = cur
	}
}

func TestSeqDetector(t *testing.T) {
	pattern := []bool{true, false, true, true} // 1011
	s := NewSimulator(SeqDetector(pattern))
	stream := []int{1, 0, 1, 1, 0, 1, 1, 1, 0, 1, 1, 0}
	// hit is a Moore output: high on the cycle AFTER the pattern completed.
	var hits []int
	for i, bit := range stream {
		s.Step([]bool{bit == 1})
		out := s.Eval([]bool{false})
		if out[0] {
			hits = append(hits, i)
		}
	}
	// Pattern 1011 completes at stream indices 3, 6 (overlap: the final
	// 1 of the first hit starts the next match) and 10.
	want := []int{3, 6, 10}
	if len(hits) != len(want) {
		t.Fatalf("hits at %v, want %v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hits at %v, want %v", hits, want)
		}
	}
}

func TestSeqDetectorNoFalseHitDuringWarmup(t *testing.T) {
	// Detector for 00 must not fire before two real bits arrived, even
	// though the shift register initializes to zeros.
	s := NewSimulator(SeqDetector([]bool{false, false}))
	s.Step([]bool{false})
	if s.Eval([]bool{false})[0] {
		t.Fatal("fired after a single bit")
	}
	s.Step([]bool{false})
	if !s.Eval([]bool{false})[0] {
		t.Fatal("did not fire after 00")
	}
}

func TestPWMDutyCycle(t *testing.T) {
	s := NewSimulator(PWM(8))
	for _, duty := range []uint64{0, 1, 64, 128, 255} {
		s.Reset()
		high := 0
		in := UintToBools(duty, 8)
		for c := 0; c < 256; c++ {
			out := s.Step(in)
			if out[0] {
				high++
			}
		}
		if high != int(duty) {
			t.Fatalf("duty %d: %d/256 high", duty, high)
		}
	}
}

func TestTrafficLightCycle(t *testing.T) {
	s := NewSimulator(TrafficLight())
	// One-hot at all times; order green -> yellow -> red -> green on ticks.
	wantOrder := []int{0, 1, 2, 0, 1, 2} // index of the lit lamp
	for i, want := range wantOrder {
		out := s.Eval([]bool{false})
		lit := -1
		for k := 0; k < 3; k++ {
			if out[k] {
				if lit >= 0 {
					t.Fatalf("step %d: two lamps lit", i)
				}
				lit = k
			}
		}
		if lit != want {
			t.Fatalf("step %d: lamp %d lit, want %d", i, lit, want)
		}
		s.Step([]bool{true})
	}
	// Without ticks the state holds.
	before := s.Eval([]bool{false})
	s.Step([]bool{false})
	after := s.Eval([]bool{false})
	for k := 0; k < 3; k++ {
		if before[k] != after[k] {
			t.Fatal("state advanced without tick")
		}
	}
}

func TestUARTTxFrame(t *testing.T) {
	s := NewSimulator(UARTTx())
	mkIn := func(start bool, data uint64) []bool {
		return append([]bool{start}, UintToBools(data, 8)...)
	}
	// Idle line is high, not busy.
	out := s.Eval(mkIn(false, 0))
	if !out[0] || out[1] {
		t.Fatalf("idle line=%v busy=%v", out[0], out[1])
	}
	// Send 0xA5: expect start(0), bits 1,0,1,0,0,1,0,1 (LSB first), stop(1).
	const data = 0xA5
	s.Step(mkIn(true, data))
	var line []bool
	for i := 0; i < 10; i++ {
		out := s.Eval(mkIn(false, 0))
		if !out[1] {
			t.Fatalf("not busy at frame position %d", i)
		}
		line = append(line, out[0])
		s.Step(mkIn(false, 0))
	}
	if line[0] {
		t.Fatal("start bit not low")
	}
	for i := 0; i < 8; i++ {
		want := data&(1<<uint(i)) != 0
		if line[1+i] != want {
			t.Fatalf("data bit %d = %v, want %v (line %v)", i, line[1+i], want, line)
		}
	}
	if !line[9] {
		t.Fatal("stop bit not high")
	}
	// Back to idle.
	out = s.Eval(mkIn(false, 0))
	if !out[0] || out[1] {
		t.Fatalf("after frame: line=%v busy=%v", out[0], out[1])
	}
}

func TestUARTTxIgnoresStartWhileBusy(t *testing.T) {
	s := NewSimulator(UARTTx())
	mkIn := func(start bool, data uint64) []bool {
		return append([]bool{start}, UintToBools(data, 8)...)
	}
	s.Step(mkIn(true, 0x0F))
	// Pulse start again mid-frame with different data.
	s.Step(mkIn(true, 0xF0))
	// Collect the remaining 8 frame slots; since one step already passed
	// (start bit emitted), positions 2..9 hold data bits of 0x0F.
	var got []bool
	for i := 0; i < 9; i++ {
		out := s.Eval(mkIn(false, 0))
		got = append(got, out[0])
		s.Step(mkIn(false, 0))
	}
	// got[0..7] are the 8 data bits (frame positions 2..9).
	for i := 0; i < 8; i++ {
		want := uint8(0x0F)&(1<<uint(i)) != 0
		if got[i] != want {
			t.Fatalf("mid-frame restart corrupted data bit %d", i)
		}
	}
}

func TestRegistry2AllBuildAndMap(t *testing.T) {
	for name, gen := range Registry2() {
		nl := gen()
		if nl.NumOutputs() == 0 {
			t.Fatalf("%s has no outputs", name)
		}
		// And they must survive optimization unchanged in behaviour.
		checkSame(t, nl, Optimize(nl), 32, 77)
	}
}

func TestDividerExhaustive8(t *testing.T) {
	s := NewSimulator(Divider(8))
	for n := uint64(0); n < 256; n += 3 {
		for d := uint64(1); d < 256; d += 7 {
			in := append(UintToBools(n, 8), UintToBools(d, 8)...)
			out := s.Eval(in)
			q := BoolsToUint(out[:8])
			r := BoolsToUint(out[8:])
			if q != n/d || r != n%d {
				t.Fatalf("div(%d,%d) = (%d,%d), want (%d,%d)", n, d, q, r, n/d, n%d)
			}
		}
	}
}

func TestDividerProperty16(t *testing.T) {
	s := NewSimulator(Divider(16))
	f := func(n uint16, dRaw uint16) bool {
		d := dRaw
		if d == 0 {
			d = 1
		}
		in := append(UintToBools(uint64(n), 16), UintToBools(uint64(d), 16)...)
		out := s.Eval(in)
		q := uint16(BoolsToUint(out[:16]))
		r := uint16(BoolsToUint(out[16:]))
		return q == n/d && r == n%d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDividerByZeroConvention(t *testing.T) {
	s := NewSimulator(Divider(8))
	in := append(UintToBools(123, 8), UintToBools(0, 8)...)
	out := s.Eval(in)
	if q := BoolsToUint(out[:8]); q != 255 {
		t.Fatalf("div by zero quotient %d, want 255", q)
	}
	if r := BoolsToUint(out[8:]); r != 123 {
		t.Fatalf("div by zero remainder %d, want the dividend", r)
	}
}

func TestBinToBCDExhaustive(t *testing.T) {
	s := NewSimulator(BinToBCD8())
	for v := uint64(0); v < 256; v++ {
		out := s.Eval(UintToBools(v, 8))
		ones := BoolsToUint(out[0:4])
		tens := BoolsToUint(out[4:8])
		hundreds := BoolsToUint(out[8:12])
		if ones != v%10 || tens != (v/10)%10 || hundreds != v/100 {
			t.Fatalf("bcd(%d) = %d%d%d", v, hundreds, tens, ones)
		}
	}
}
