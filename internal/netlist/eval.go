package netlist

import "fmt"

// Simulator evaluates a Netlist at the gate level. It is the golden
// reference model: the FPGA fabric's functional simulation of a compiled
// circuit is checked against it in the compile tests.
//
// For combinational networks, call Eval. For sequential networks, call
// Step once per clock cycle; DFF state is held between steps and can be
// read and written (mirroring the paper's observability/controllability
// requirement for preemptable sequential circuits).
type Simulator struct {
	nl     *Netlist
	values []bool // per-node current value
	state  []bool // per-DFF latched value, parallel to nl.DFFs
}

// NewSimulator returns a Simulator with all flip-flops at their reset
// values.
func NewSimulator(nl *Netlist) *Simulator {
	s := &Simulator{
		nl:     nl,
		values: make([]bool, len(nl.Nodes)),
		state:  make([]bool, len(nl.DFFs)),
	}
	s.Reset()
	return s
}

// Reset restores every flip-flop to its reset value.
func (s *Simulator) Reset() {
	for i, id := range s.nl.DFFs {
		s.state[i] = s.nl.Nodes[id].Init
	}
}

// State returns a copy of the flip-flop state vector, ordered as nl.DFFs.
func (s *Simulator) State() []bool {
	return append([]bool(nil), s.state...)
}

// SetState overwrites the flip-flop state vector. It panics if the length
// does not match the number of DFFs.
func (s *Simulator) SetState(state []bool) {
	if len(state) != len(s.state) {
		panic(fmt.Sprintf("netlist: SetState with %d values for %d DFFs", len(state), len(s.state)))
	}
	copy(s.state, state)
}

// propagate computes all node values from the given primary inputs and the
// current DFF state.
func (s *Simulator) propagate(inputs []bool) {
	if len(inputs) != len(s.nl.Inputs) {
		panic(fmt.Sprintf("netlist %q: %d inputs supplied, want %d",
			s.nl.Name, len(inputs), len(s.nl.Inputs)))
	}
	for i, id := range s.nl.Inputs {
		s.values[id] = inputs[i]
	}
	for i, id := range s.nl.DFFs {
		s.values[id] = s.state[i]
	}
	v := s.values
	for _, id := range s.nl.TopoOrder() {
		nd := &s.nl.Nodes[id]
		switch nd.Kind {
		case KindInput, KindDFF:
			// already set
		case KindConst:
			v[id] = nd.Init
		case KindOutput, KindBuf:
			v[id] = v[nd.Fanin[0]]
		case KindNot:
			v[id] = !v[nd.Fanin[0]]
		case KindAnd:
			v[id] = v[nd.Fanin[0]] && v[nd.Fanin[1]]
		case KindOr:
			v[id] = v[nd.Fanin[0]] || v[nd.Fanin[1]]
		case KindXor:
			v[id] = v[nd.Fanin[0]] != v[nd.Fanin[1]]
		case KindNand:
			v[id] = !(v[nd.Fanin[0]] && v[nd.Fanin[1]])
		case KindNor:
			v[id] = !(v[nd.Fanin[0]] || v[nd.Fanin[1]])
		case KindMux:
			if v[nd.Fanin[0]] {
				v[id] = v[nd.Fanin[2]]
			} else {
				v[id] = v[nd.Fanin[1]]
			}
		default:
			panic(fmt.Sprintf("netlist: unknown kind %v", nd.Kind))
		}
	}
}

func (s *Simulator) outputs() []bool {
	out := make([]bool, len(s.nl.Outputs))
	for i, id := range s.nl.Outputs {
		out[i] = s.values[id]
	}
	return out
}

// Eval evaluates the network combinationally (using current DFF state for
// any flip-flop outputs, without latching new state) and returns the
// primary outputs in port order.
func (s *Simulator) Eval(inputs []bool) []bool {
	s.propagate(inputs)
	return s.outputs()
}

// Step performs one clock cycle: it propagates inputs, returns the outputs
// observed before the clock edge, then latches every DFF's D input.
func (s *Simulator) Step(inputs []bool) []bool {
	s.propagate(inputs)
	out := s.outputs()
	for i, id := range s.nl.DFFs {
		s.state[i] = s.values[s.nl.Nodes[id].Fanin[0]]
	}
	return out
}

// Run applies a sequence of input vectors, one per cycle, and returns the
// per-cycle outputs.
func (s *Simulator) Run(inputSeq [][]bool) [][]bool {
	out := make([][]bool, len(inputSeq))
	for i, in := range inputSeq {
		out[i] = s.Step(in)
	}
	return out
}

// BoolsToUint packs a little-endian bit vector into a uint64. Bits beyond
// 64 are ignored.
func BoolsToUint(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if i >= 64 {
			break
		}
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

// UintToBools unpacks the low width bits of v into a little-endian bit
// vector.
func UintToBools(v uint64, width int) []bool {
	bits := make([]bool, width)
	for i := 0; i < width && i < 64; i++ {
		bits[i] = v&(1<<uint(i)) != 0
	}
	return bits
}
