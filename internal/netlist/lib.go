package netlist

import "fmt"

// This file is the circuit library: parametric generators for the logic
// the experiments load onto the virtual FPGA. Combinational datapaths
// (adders, multipliers, ALUs, coders) exercise dynamic loading and
// partitioning; sequential machines (counters, LFSRs, CRC engines,
// accumulators) exercise preemption with state save/restore.

// Adder returns a width-bit ripple-carry adder: inputs a, b and cin;
// outputs sum[width] and cout.
func Adder(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("adder%d", width))
	a := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	cin := b.Input("cin")
	sum, cout := addBits(b, a, bb, cin)
	b.OutputBus("sum", sum)
	b.Output("cout", cout)
	return b.MustBuild()
}

// addBits builds a ripple-carry adder inside an existing builder and
// returns the sum bits and carry out.
func addBits(b *Builder, a, bb []NodeID, cin NodeID) (sum []NodeID, cout NodeID) {
	if len(a) != len(bb) {
		panic("netlist: addBits with mismatched widths")
	}
	carry := cin
	sum = make([]NodeID, len(a))
	for i := range a {
		axb := b.Xor(a[i], bb[i])
		sum[i] = b.Xor(axb, carry)
		carry = b.Or(b.And(a[i], bb[i]), b.And(axb, carry))
	}
	return sum, carry
}

// Subtractor returns a width-bit subtractor computing a-b: outputs
// diff[width] and borrow.
func Subtractor(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("sub%d", width))
	a := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	notB := make([]NodeID, width)
	for i := range bb {
		notB[i] = b.Not(bb[i])
	}
	one := b.Const(true)
	diff, carry := addBits(b, a, notB, one)
	b.OutputBus("diff", diff)
	b.Output("borrow", b.Not(carry))
	return b.MustBuild()
}

// Comparator returns a width-bit unsigned comparator with outputs eq and lt
// (a < b).
func Comparator(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("cmp%d", width))
	a := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	eq := b.Const(true)
	lt := b.Const(false)
	// Scan from MSB down: lt is set at the first differing bit where a=0.
	for i := width - 1; i >= 0; i-- {
		bitEq := b.Not(b.Xor(a[i], bb[i]))
		bitLt := b.And(b.Not(a[i]), bb[i])
		lt = b.Or(lt, b.And(eq, bitLt))
		eq = b.And(eq, bitEq)
	}
	b.Output("eq", eq)
	b.Output("lt", lt)
	return b.MustBuild()
}

// Multiplier returns a width x width array multiplier with a 2*width-bit
// product.
func Multiplier(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("mul%d", width))
	a := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	zero := b.Const(false)
	// Accumulate partial products row by row with ripple adders.
	acc := make([]NodeID, 2*width)
	for i := range acc {
		acc[i] = zero
	}
	for i := 0; i < width; i++ {
		// partial product row i: (a AND b[i]) << i, width bits wide
		row := make([]NodeID, 2*width)
		for k := range row {
			row[k] = zero
		}
		for j := 0; j < width; j++ {
			row[i+j] = b.And(a[j], bb[i])
		}
		acc, _ = addBits(b, acc, row, zero)
	}
	b.OutputBus("p", acc)
	return b.MustBuild()
}

// PopCount returns a circuit counting the set bits of a width-bit input.
func PopCount(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("popcount%d", width))
	in := b.InputBus("x", width)
	outBits := 1
	for (1 << outBits) <= width {
		outBits++
	}
	zero := b.Const(false)
	acc := make([]NodeID, outBits)
	for i := range acc {
		acc[i] = zero
	}
	for _, bit := range in {
		addend := make([]NodeID, outBits)
		addend[0] = bit
		for i := 1; i < outBits; i++ {
			addend[i] = zero
		}
		acc, _ = addBits(b, acc, addend, zero)
	}
	b.OutputBus("count", acc)
	return b.MustBuild()
}

// Parity returns the XOR reduction of a width-bit input.
func Parity(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("parity%d", width))
	in := b.InputBus("x", width)
	b.Output("p", b.Xor(in...))
	return b.MustBuild()
}

// MuxTree returns a 2^selBits:1 multiplexer.
func MuxTree(selBits int) *Netlist {
	b := NewBuilder(fmt.Sprintf("mux%d", 1<<selBits))
	data := b.InputBus("d", 1<<selBits)
	sel := b.InputBus("sel", selBits)
	layer := data
	for s := 0; s < selBits; s++ {
		next := make([]NodeID, len(layer)/2)
		for i := range next {
			next[i] = b.Mux(sel[s], layer[2*i], layer[2*i+1])
		}
		layer = next
	}
	b.Output("y", layer[0])
	return b.MustBuild()
}

// PriorityEncoder returns a width-bit priority encoder: outputs the index
// of the highest set bit (idx bus) and a valid flag.
func PriorityEncoder(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("prienc%d", width))
	in := b.InputBus("x", width)
	outBits := 1
	for (1 << outBits) < width {
		outBits++
	}
	zero := b.Const(false)
	idx := make([]NodeID, outBits)
	for i := range idx {
		idx[i] = zero
	}
	valid := zero
	// Scan from LSB to MSB so higher bits override.
	for i := 0; i < width; i++ {
		for k := 0; k < outBits; k++ {
			bitSet := i&(1<<uint(k)) != 0
			var v NodeID
			if bitSet {
				v = b.Const(true)
			} else {
				v = b.Const(false)
			}
			idx[k] = b.Mux(in[i], idx[k], v)
		}
		valid = b.Or(valid, in[i])
	}
	b.OutputBus("idx", idx)
	b.Output("valid", valid)
	return b.MustBuild()
}

// BarrelShifter returns a width-bit left rotator: y = x rotl sh, where
// width must be a power of two and sh has log2(width) bits.
func BarrelShifter(width int) *Netlist {
	if width&(width-1) != 0 {
		panic("netlist: BarrelShifter width must be a power of two")
	}
	shBits := 0
	for (1 << shBits) < width {
		shBits++
	}
	b := NewBuilder(fmt.Sprintf("rotl%d", width))
	x := b.InputBus("x", width)
	sh := b.InputBus("sh", shBits)
	cur := x
	for s := 0; s < shBits; s++ {
		amount := 1 << s
		next := make([]NodeID, width)
		for i := 0; i < width; i++ {
			next[i] = b.Mux(sh[s], cur[i], cur[(i-amount+width)%width])
		}
		cur = next
	}
	b.OutputBus("y", cur)
	return b.MustBuild()
}

// ALU returns a width-bit ALU with a 2-bit op select:
// op=0 AND, op=1 OR, op=2 XOR, op=3 ADD. Outputs y[width].
func ALU(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("alu%d", width))
	a := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	op := b.InputBus("op", 2)
	zero := b.Const(false)
	sum, _ := addBits(b, a, bb, zero)
	y := make([]NodeID, width)
	for i := 0; i < width; i++ {
		andv := b.And(a[i], bb[i])
		orv := b.Or(a[i], bb[i])
		xorv := b.Xor(a[i], bb[i])
		lo := b.Mux(op[0], andv, orv)    // op1=0
		hi := b.Mux(op[0], xorv, sum[i]) // op1=1
		y[i] = b.Mux(op[1], lo, hi)
	}
	b.OutputBus("y", y)
	return b.MustBuild()
}

// GrayEncoder converts a width-bit binary input to Gray code.
func GrayEncoder(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("gray%d", width))
	in := b.InputBus("bin", width)
	out := make([]NodeID, width)
	for i := 0; i < width-1; i++ {
		out[i] = b.Xor(in[i], in[i+1])
	}
	out[width-1] = b.Buf(in[width-1])
	b.OutputBus("gray", out)
	return b.MustBuild()
}

// Counter returns a width-bit up counter with an enable input. Outputs the
// current count; state advances each cycle when en=1.
func Counter(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("counter%d", width))
	en := b.Input("en")
	q := make([]NodeID, width)
	setD := make([]func(NodeID), width)
	for i := 0; i < width; i++ {
		q[i], setD[i] = feedback(b, false)
	}
	carry := en
	for i := 0; i < width; i++ {
		setD[i](b.Xor(q[i], carry))
		carry = b.And(carry, q[i])
	}
	b.OutputBus("count", q)
	return b.MustBuild()
}

// feedback creates a DFF whose D input can be defined after its output is
// used, which every sequential generator needs (next-state logic reads the
// present state). It returns the DFF output id and a setter for the D
// source; until the setter is called the DFF feeds back on itself.
func feedback(b *Builder, init bool) (q NodeID, setD func(NodeID)) {
	q = b.DFF(0, init)
	b.nl.Nodes[q].Fanin = []NodeID{q}
	return q, func(d NodeID) { b.nl.Nodes[q].Fanin = []NodeID{d} }
}

// LFSR returns a width-bit Fibonacci linear-feedback shift register with
// the given tap positions (bit indices XORed into the new bit). State
// initializes to 0...01 (bit 0 set) and shifts every cycle when en=1.
func LFSR(width int, taps []int) *Netlist {
	b := NewBuilder(fmt.Sprintf("lfsr%d", width))
	en := b.Input("en")
	q := make([]NodeID, width)
	setD := make([]func(NodeID), width)
	for i := 0; i < width; i++ {
		q[i], setD[i] = feedback(b, i == 0)
	}
	fbBits := make([]NodeID, 0, len(taps))
	for _, t := range taps {
		if t < 0 || t >= width {
			panic(fmt.Sprintf("netlist: LFSR tap %d out of range", t))
		}
		fbBits = append(fbBits, q[t])
	}
	newBit := b.Xor(fbBits...)
	// Shift toward higher indices; bit 0 receives the feedback.
	setD[0](b.Mux(en, q[0], newBit))
	for i := 1; i < width; i++ {
		setD[i](b.Mux(en, q[i], q[i-1]))
	}
	b.OutputBus("state", q)
	return b.MustBuild()
}

// CRC returns a serial CRC engine of the given width and polynomial
// (polynomial bit i set means term x^i; the x^width term is implicit).
// Each cycle it shifts in one data bit (din); the register is exposed.
func CRC(width int, poly uint64) *Netlist {
	b := NewBuilder(fmt.Sprintf("crc%d_%x", width, poly))
	din := b.Input("din")
	q := make([]NodeID, width)
	setD := make([]func(NodeID), width)
	for i := 0; i < width; i++ {
		q[i], setD[i] = feedback(b, false)
	}
	fb := b.Xor(din, q[width-1])
	for i := 0; i < width; i++ {
		var prev NodeID
		if i == 0 {
			prev = b.Const(false)
		} else {
			prev = q[i-1]
		}
		if poly&(1<<uint(i)) != 0 {
			setD[i](b.Xor(prev, fb))
		} else if i == 0 {
			setD[i](fb)
		} else {
			setD[i](prev)
		}
	}
	b.OutputBus("crc", q)
	return b.MustBuild()
}

// Accumulator returns a width-bit accumulator: each cycle with en=1 it
// adds the input bus to its register. The register value is the output.
func Accumulator(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("acc%d", width))
	en := b.Input("en")
	x := b.InputBus("x", width)
	q := make([]NodeID, width)
	setD := make([]func(NodeID), width)
	for i := 0; i < width; i++ {
		q[i], setD[i] = feedback(b, false)
	}
	zero := b.Const(false)
	sum, _ := addBits(b, q, x, zero)
	for i := 0; i < width; i++ {
		setD[i](b.Mux(en, q[i], sum[i]))
	}
	b.OutputBus("acc", q)
	return b.MustBuild()
}

// ShiftRegister returns a width-bit serial-in shift register with the full
// register exposed as output.
func ShiftRegister(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("shreg%d", width))
	din := b.Input("din")
	q := make([]NodeID, width)
	setD := make([]func(NodeID), width)
	for i := 0; i < width; i++ {
		q[i], setD[i] = feedback(b, false)
	}
	setD[0](din)
	for i := 1; i < width; i++ {
		setD[i](q[i-1])
	}
	b.OutputBus("q", q)
	return b.MustBuild()
}

// Registry maps circuit names to generators at standard sizes, for the
// CLI tools and workload generators. It includes the extended library
// (Registry2).
func Registry() map[string]func() *Netlist {
	reg := map[string]func() *Netlist{
		"adder8":     func() *Netlist { return Adder(8) },
		"adder16":    func() *Netlist { return Adder(16) },
		"adder32":    func() *Netlist { return Adder(32) },
		"sub8":       func() *Netlist { return Subtractor(8) },
		"sub16":      func() *Netlist { return Subtractor(16) },
		"cmp8":       func() *Netlist { return Comparator(8) },
		"cmp16":      func() *Netlist { return Comparator(16) },
		"mul4":       func() *Netlist { return Multiplier(4) },
		"mul8":       func() *Netlist { return Multiplier(8) },
		"popcount16": func() *Netlist { return PopCount(16) },
		"popcount32": func() *Netlist { return PopCount(32) },
		"parity16":   func() *Netlist { return Parity(16) },
		"parity32":   func() *Netlist { return Parity(32) },
		"mux16":      func() *Netlist { return MuxTree(4) },
		"prienc8":    func() *Netlist { return PriorityEncoder(8) },
		"rotl8":      func() *Netlist { return BarrelShifter(8) },
		"rotl16":     func() *Netlist { return BarrelShifter(16) },
		"alu8":       func() *Netlist { return ALU(8) },
		"alu16":      func() *Netlist { return ALU(16) },
		"gray8":      func() *Netlist { return GrayEncoder(8) },
		"counter8":   func() *Netlist { return Counter(8) },
		"counter16":  func() *Netlist { return Counter(16) },
		"lfsr16":     func() *Netlist { return LFSR(16, []int{15, 13, 12, 10}) },
		"crc8":       func() *Netlist { return CRC(8, 0x07) },
		"crc16":      func() *Netlist { return CRC(16, 0x8005) },
		"acc8":       func() *Netlist { return Accumulator(8) },
		"acc16":      func() *Netlist { return Accumulator(16) },
		"shreg16":    func() *Netlist { return ShiftRegister(16) },
	}
	for name, gen := range Registry2() {
		reg[name] = gen
	}
	for name, gen := range registryExtra {
		reg[name] = gen
	}
	return reg
}
