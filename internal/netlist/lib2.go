package netlist

import "fmt"

// This file extends the circuit library with the second tier of
// generators: faster adder architectures (for the compile-flow ablation
// of area vs depth), error-coding and display circuits (the telecom and
// embedded scenarios), and small finite-state machines (sequential
// workloads with non-trivial state for preemption tests).

// cmpLT builds an unsigned a < b comparator over equal-width buses.
func cmpLT(b *Builder, a, bb []NodeID) NodeID {
	eq := b.Const(true)
	lt := b.Const(false)
	for i := len(a) - 1; i >= 0; i-- {
		bitEq := b.Not(b.Xor(a[i], bb[i]))
		bitLt := b.And(b.Not(a[i]), bb[i])
		lt = b.Or(lt, b.And(eq, bitLt))
		eq = b.And(eq, bitEq)
	}
	return lt
}

// muxBus selects z when sel=0, o when sel=1, bitwise.
func muxBus(b *Builder, sel NodeID, z, o []NodeID) []NodeID {
	out := make([]NodeID, len(z))
	for i := range z {
		out[i] = b.Mux(sel, z[i], o[i])
	}
	return out
}

// CLAAdder returns a width-bit carry-lookahead adder (4-bit groups):
// same function as Adder but shallower carry logic — the depth/area
// trade the compile flow can measure.
func CLAAdder(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("cla%d", width))
	a := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	cin := b.Input("cin")

	g := make([]NodeID, width) // generate
	p := make([]NodeID, width) // propagate
	for i := 0; i < width; i++ {
		g[i] = b.And(a[i], bb[i])
		p[i] = b.Xor(a[i], bb[i])
	}
	carry := make([]NodeID, width+1)
	carry[0] = cin
	for base := 0; base < width; base += 4 {
		n := 4
		if base+n > width {
			n = width - base
		}
		// Within the group, carries expand flat over g/p (the lookahead):
		// c_{i+1} = g_i + p_i*g_{i-1} + ... + p_i*...*p_0*c_base.
		for i := 0; i < n; i++ {
			acc := g[base+i]
			prodChain := p[base+i]
			for j := i - 1; j >= 0; j-- {
				acc = b.Or(acc, b.And(prodChain, g[base+j]))
				prodChain = b.And(prodChain, p[base+j])
			}
			carry[base+i+1] = b.Or(acc, b.And(prodChain, carry[base]))
		}
	}
	sum := make([]NodeID, width)
	for i := 0; i < width; i++ {
		sum[i] = b.Xor(p[i], carry[i])
	}
	b.OutputBus("sum", sum)
	b.Output("cout", carry[width])
	return b.MustBuild()
}

// CarrySelectAdder returns a width-bit carry-select adder with the given
// block size: each block computes both carry assumptions in parallel.
func CarrySelectAdder(width, block int) *Netlist {
	if block <= 0 {
		block = 4
	}
	b := NewBuilder(fmt.Sprintf("csel%d_%d", width, block))
	a := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	cin := b.Input("cin")

	carry := cin
	var sum []NodeID
	for base := 0; base < width; base += block {
		n := block
		if base+n > width {
			n = width - base
		}
		s0, c0 := addBits(b, a[base:base+n], bb[base:base+n], b.Const(false))
		s1, c1 := addBits(b, a[base:base+n], bb[base:base+n], b.Const(true))
		sum = append(sum, muxBus(b, carry, s0, s1)...)
		carry = b.Mux(carry, c0, c1)
	}
	b.OutputBus("sum", sum)
	b.Output("cout", carry)
	return b.MustBuild()
}

// AbsDiff returns |a - b| over width-bit unsigned inputs.
func AbsDiff(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("absdiff%d", width))
	a := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	notB := make([]NodeID, width)
	notA := make([]NodeID, width)
	for i := 0; i < width; i++ {
		notB[i] = b.Not(bb[i])
		notA[i] = b.Not(a[i])
	}
	one := b.Const(true)
	amb, _ := addBits(b, a, notB, one)  // a - b
	bma, _ := addBits(b, bb, notA, one) // b - a
	lt := cmpLT(b, a, bb)
	b.OutputBus("d", muxBus(b, lt, amb, bma))
	return b.MustBuild()
}

// MinMax returns the minimum and maximum of two width-bit inputs.
func MinMax(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("minmax%d", width))
	a := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	lt := cmpLT(b, a, bb)
	b.OutputBus("min", muxBus(b, lt, bb, a))
	b.OutputBus("max", muxBus(b, lt, a, bb))
	return b.MustBuild()
}

// CLZ returns a count-leading-zeros circuit over a width-bit input
// (width must be a power of two). Output has log2(width)+1 bits (the
// extra bit encodes the all-zero case).
func CLZ(width int) *Netlist {
	if width&(width-1) != 0 {
		panic("netlist: CLZ width must be a power of two")
	}
	b := NewBuilder(fmt.Sprintf("clz%d", width))
	x := b.InputBus("x", width)
	outBits := 1
	for (1 << outBits) < width {
		outBits++
	}
	outBits++ // all-zero case needs one more bit

	// Priority-encode from the top: the highest set bit at position p
	// gives clz = width-1-p; all-zero gives clz = width.
	count := make([]NodeID, outBits)
	zero := b.Const(false)
	for i := range count {
		count[i] = zero
	}
	// Walk from MSB: the first set bit at position p gives clz = width-1-p.
	found := b.Const(false)
	for p := width - 1; p >= 0; p-- {
		v := width - 1 - p
		sel := b.And(b.Not(found), x[p]) // first set bit
		for k := 0; k < outBits; k++ {
			if v&(1<<uint(k)) != 0 {
				count[k] = b.Mux(sel, count[k], b.Const(true))
			}
		}
		found = b.Or(found, x[p])
	}
	// All-zero: clz = width.
	allZero := b.Not(found)
	for k := 0; k < outBits; k++ {
		if width&(1<<uint(k)) != 0 {
			count[k] = b.Mux(allZero, count[k], b.Const(true))
		}
	}
	b.OutputBus("clz", count)
	return b.MustBuild()
}

// Hamming74Encoder returns the (7,4) Hamming encoder: 4 data bits in,
// 7 code bits out (p1 p2 d1 p4 d2 d3 d4 in positions 1..7, output bus
// index i = position i+1).
func Hamming74Encoder() *Netlist {
	b := NewBuilder("hamming74enc")
	d := b.InputBus("d", 4)
	p1 := b.Xor(d[0], d[1], d[3])
	p2 := b.Xor(d[0], d[2], d[3])
	p4 := b.Xor(d[1], d[2], d[3])
	b.OutputBus("c", []NodeID{p1, p2, d[0], p4, d[1], d[2], d[3]})
	return b.MustBuild()
}

// Hamming74Decoder returns the (7,4) Hamming decoder with single-error
// correction: 7 code bits in, 4 corrected data bits plus an error flag.
func Hamming74Decoder() *Netlist {
	b := NewBuilder("hamming74dec")
	c := b.InputBus("c", 7) // positions 1..7 at indices 0..6
	s1 := b.Xor(c[0], c[2], c[4], c[6])
	s2 := b.Xor(c[1], c[2], c[5], c[6])
	s4 := b.Xor(c[3], c[4], c[5], c[6])
	// Correct position s (1-based) when syndrome non-zero.
	corrected := make([]NodeID, 7)
	for pos := 1; pos <= 7; pos++ {
		m1, m2, m4 := pos&1 != 0, pos&2 != 0, pos&4 != 0
		t1, t2, t4 := s1, s2, s4
		if !m1 {
			t1 = b.Not(s1)
		}
		if !m2 {
			t2 = b.Not(s2)
		}
		if !m4 {
			t4 = b.Not(s4)
		}
		hit := b.And(b.And(t1, t2), t4)
		corrected[pos-1] = b.Xor(c[pos-1], hit)
	}
	b.OutputBus("d", []NodeID{corrected[2], corrected[4], corrected[5], corrected[6]})
	b.Output("err", b.Or(b.Or(s1, s2), s4))
	return b.MustBuild()
}

// SevenSeg returns a hexadecimal 7-segment decoder: 4-bit input, 7
// segment outputs (a..g, active high), standard hex glyphs.
func SevenSeg() *Netlist {
	b := NewBuilder("sevenseg")
	in := b.InputBus("n", 4)
	// Segment patterns for 0..F, bit i of pattern = segment i (a..g).
	patterns := [16]uint8{
		0x3F, 0x06, 0x5B, 0x4F, 0x66, 0x6D, 0x7D, 0x07,
		0x7F, 0x6F, 0x77, 0x7C, 0x39, 0x5E, 0x79, 0x71,
	}
	segs := make([]NodeID, 7)
	for s := 0; s < 7; s++ {
		// Build the minterm sum via a mux tree over the 4 inputs.
		cur := make([]NodeID, 16)
		for v := 0; v < 16; v++ {
			cur[v] = b.Const(patterns[v]&(1<<uint(s)) != 0)
		}
		for level := 0; level < 4; level++ {
			next := make([]NodeID, len(cur)/2)
			for i := range next {
				next[i] = b.Mux(in[level], cur[2*i], cur[2*i+1])
			}
			cur = next
		}
		segs[s] = cur[0]
	}
	b.OutputBus("seg", segs)
	return b.MustBuild()
}

// SortNet4 returns a Batcher sorting network for four width-bit unsigned
// values: inputs v0..v3, outputs s0 <= s1 <= s2 <= s3.
func SortNet4(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("sort4x%d", width))
	vals := make([][]NodeID, 4)
	for i := range vals {
		vals[i] = b.InputBus(fmt.Sprintf("v%d", i), width)
	}
	swap := func(i, j int) {
		lt := cmpLT(b, vals[j], vals[i]) // vals[j] < vals[i] -> exchange
		lo := muxBus(b, lt, vals[i], vals[j])
		hi := muxBus(b, lt, vals[j], vals[i])
		vals[i], vals[j] = lo, hi
	}
	swap(0, 1)
	swap(2, 3)
	swap(0, 2)
	swap(1, 3)
	swap(1, 2)
	for i := range vals {
		b.OutputBus(fmt.Sprintf("s%d", i), vals[i])
	}
	return b.MustBuild()
}

// JohnsonCounter returns a width-bit Johnson (twisted-ring) counter with
// enable; period 2*width.
func JohnsonCounter(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("johnson%d", width))
	en := b.Input("en")
	q := make([]NodeID, width)
	setD := make([]func(NodeID), width)
	for i := 0; i < width; i++ {
		q[i], setD[i] = feedback(b, false)
	}
	setD[0](b.Mux(en, q[0], b.Not(q[width-1])))
	for i := 1; i < width; i++ {
		setD[i](b.Mux(en, q[i], q[i-1]))
	}
	b.OutputBus("q", q)
	return b.MustBuild()
}

// GrayCounter returns a width-bit counter whose output is Gray-coded:
// binary core registers plus combinational Gray conversion.
func GrayCounter(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("graycnt%d", width))
	en := b.Input("en")
	q := make([]NodeID, width)
	setD := make([]func(NodeID), width)
	for i := 0; i < width; i++ {
		q[i], setD[i] = feedback(b, false)
	}
	carry := en
	for i := 0; i < width; i++ {
		setD[i](b.Xor(q[i], carry))
		carry = b.And(carry, q[i])
	}
	gray := make([]NodeID, width)
	for i := 0; i < width-1; i++ {
		gray[i] = b.Xor(q[i], q[i+1])
	}
	gray[width-1] = b.Buf(q[width-1])
	b.OutputBus("gray", gray)
	return b.MustBuild()
}

// SeqDetector returns a Moore machine detecting the bit pattern (with
// overlap) on a serial input: output goes high the cycle after the final
// pattern bit arrived.
func SeqDetector(pattern []bool) *Netlist {
	if len(pattern) == 0 {
		panic("netlist: empty pattern")
	}
	name := "seqdet_"
	for _, p := range pattern {
		if p {
			name += "1"
		} else {
			name += "0"
		}
	}
	b := NewBuilder(name)
	din := b.Input("din")
	n := len(pattern)
	// Shift register of the last n bits.
	q := make([]NodeID, n)
	setD := make([]func(NodeID), n)
	for i := 0; i < n; i++ {
		q[i], setD[i] = feedback(b, false)
	}
	setD[0](din)
	for i := 1; i < n; i++ {
		setD[i](q[i-1])
	}
	// Valid counter: output only meaningful once n bits have shifted in.
	// Use an n-state one-hot "warmup" chain.
	warm := make([]NodeID, n)
	setW := make([]func(NodeID), n)
	for i := 0; i < n; i++ {
		warm[i], setW[i] = feedback(b, false)
	}
	setW[0](b.Const(true))
	for i := 1; i < n; i++ {
		setW[i](warm[i-1])
	}
	match := warm[n-1]
	for i := 0; i < n; i++ {
		// q[0] holds the newest bit = pattern's last element.
		want := pattern[n-1-i]
		bit := q[i]
		if !want {
			bit = b.Not(bit)
		}
		match = b.And(match, bit)
	}
	b.Output("hit", match)
	return b.MustBuild()
}

// PWM returns a pulse-width modulator: a free-running width-bit counter
// compared against the duty input; out is high while counter < duty.
func PWM(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("pwm%d", width))
	duty := b.InputBus("duty", width)
	q := make([]NodeID, width)
	setD := make([]func(NodeID), width)
	for i := 0; i < width; i++ {
		q[i], setD[i] = feedback(b, false)
	}
	carry := b.Const(true)
	for i := 0; i < width; i++ {
		setD[i](b.Xor(q[i], carry))
		carry = b.And(carry, q[i])
	}
	b.Output("out", cmpLT(b, q, duty))
	b.OutputBus("count", q)
	return b.MustBuild()
}

// TrafficLight returns the classic 3-state controller: on each tick
// advance green -> yellow -> red -> green; outputs are one-hot lamps.
func TrafficLight() *Netlist {
	b := NewBuilder("traffic")
	tick := b.Input("tick")
	// Two state bits: 00 green, 01 yellow, 10 red.
	s0, set0 := feedback(b, false)
	s1, set1 := feedback(b, false)
	// next = f(state): 00->01, 01->10, 10->00.
	n0 := b.And(b.Not(s1), b.Not(s0)) // next s0 = (state==green)
	n1 := b.And(b.Not(s1), s0)        // next s1 = (state==yellow)
	set0(b.Mux(tick, s0, n0))
	set1(b.Mux(tick, s1, n1))
	b.Output("green", b.And(b.Not(s1), b.Not(s0)))
	b.Output("yellow", b.And(b.Not(s1), s0))
	b.Output("red", s1)
	return b.MustBuild()
}

// UARTTx returns a simplified 8N1 transmitter clocked at the baud rate:
// pulsing `start` with data on d[8] emits start bit, 8 data bits (LSB
// first) and a stop bit over the next 10 cycles on `line` (idle high);
// `busy` is high while transmitting. A start pulse while busy is ignored.
func UARTTx() *Netlist {
	b := NewBuilder("uarttx")
	start := b.Input("start")
	d := b.InputBus("d", 8)

	// 4-bit cycle counter: 0 = idle, 1..10 = frame position.
	cnt := make([]NodeID, 4)
	setC := make([]func(NodeID), 4)
	for i := range cnt {
		cnt[i], setC[i] = feedback(b, false)
	}
	isVal := func(v int) NodeID {
		t := b.Const(true)
		for i := 0; i < 4; i++ {
			bit := cnt[i]
			if v&(1<<uint(i)) == 0 {
				bit = b.Not(bit)
			}
			t = b.And(t, bit)
		}
		return t
	}
	idle := isVal(0)
	last := isVal(10)
	busy := b.Not(idle)
	accept := b.And(idle, start)
	// Data positions: cnt 2..9 emit sh[0].
	isData := b.Const(false)
	for v := 2; v <= 9; v++ {
		isData = b.Or(isData, isVal(v))
	}

	// Shift register latches data on accept and shifts after each data
	// position has been emitted (shifting any earlier would consume d0
	// during the start bit).
	sh := make([]NodeID, 8)
	setS := make([]func(NodeID), 8)
	for i := range sh {
		sh[i], setS[i] = feedback(b, false)
	}
	for i := 0; i < 8; i++ {
		var shifted NodeID
		if i == 7 {
			shifted = b.Const(true) // fill with stop-bit level
		} else {
			shifted = sh[i+1]
		}
		setS[i](b.Mux(accept, b.Mux(isData, sh[i], shifted), d[i]))
	}

	// Counter next: accept -> 1; busy -> +1 until 10 then 0; idle holds 0.
	inc := make([]NodeID, 4)
	carry := b.Const(true)
	for i := 0; i < 4; i++ {
		inc[i] = b.Xor(cnt[i], carry)
		carry = b.And(carry, cnt[i])
	}
	for i := 0; i < 4; i++ {
		next := b.Mux(last, inc[i], b.Const(false)) // wrap after stop bit
		v := b.Mux(busy, cnt[i], next)
		one := b.Const(i == 0)
		setC[i](b.Mux(accept, v, one))
	}

	// Line: idle/stop high, start bit low at cnt==1, data at cnt 2..9.
	isStart := isVal(1)
	line := b.Mux(isStart, b.Mux(isData, b.Const(true), sh[0]), b.Const(false))
	b.Output("line", line)
	b.Output("busy", busy)
	return b.MustBuild()
}

// Registry2 returns the extended-library generators at standard sizes.
// Registry() includes these, so managers and tools see one flat library.
func Registry2() map[string]func() *Netlist {
	return map[string]func() *Netlist{
		"cla16":        func() *Netlist { return CLAAdder(16) },
		"cla32":        func() *Netlist { return CLAAdder(32) },
		"csel16":       func() *Netlist { return CarrySelectAdder(16, 4) },
		"absdiff8":     func() *Netlist { return AbsDiff(8) },
		"minmax8":      func() *Netlist { return MinMax(8) },
		"clz16":        func() *Netlist { return CLZ(16) },
		"hamming74enc": Hamming74Encoder,
		"hamming74dec": Hamming74Decoder,
		"sevenseg":     SevenSeg,
		"sort4x4":      func() *Netlist { return SortNet4(4) },
		"johnson8":     func() *Netlist { return JohnsonCounter(8) },
		"graycnt8":     func() *Netlist { return GrayCounter(8) },
		"seqdet1011":   func() *Netlist { return SeqDetector([]bool{true, false, true, true}) },
		"pwm8":         func() *Netlist { return PWM(8) },
		"traffic":      TrafficLight,
		"uarttx":       UARTTx,
	}
}
