package netlist

import "fmt"

// Concat builds a netlist containing an independent copy of each input
// netlist side by side, with port names prefixed "cI_" (I = position).
// It is the "merge all circuits into only one" construction from the
// paper's §3: the monolithic alternative to dynamic loading, which needs
// the area of all parts together.
func Concat(name string, nls ...*Netlist) (*Netlist, error) {
	out := &Netlist{Name: name}
	for i, src := range nls {
		offset := NodeID(len(out.Nodes))
		prefix := fmt.Sprintf("c%d_", i)
		for _, nd := range src.Nodes {
			cp := Node{
				ID:   nd.ID + offset,
				Kind: nd.Kind,
				Name: nd.Name,
				Init: nd.Init,
			}
			if nd.Name != "" && (nd.Kind == KindInput || nd.Kind == KindOutput) {
				cp.Name = prefix + nd.Name
			}
			cp.Fanin = make([]NodeID, len(nd.Fanin))
			for k, f := range nd.Fanin {
				cp.Fanin[k] = f + offset
			}
			out.Nodes = append(out.Nodes, cp)
		}
		for _, id := range src.Inputs {
			out.Inputs = append(out.Inputs, id+offset)
		}
		for _, id := range src.Outputs {
			out.Outputs = append(out.Outputs, id+offset)
		}
		for _, id := range src.DFFs {
			out.DFFs = append(out.DFFs, id+offset)
		}
	}
	if err := out.validate(); err != nil {
		return nil, err
	}
	if err := out.computeTopo(); err != nil {
		return nil, err
	}
	return out, nil
}
