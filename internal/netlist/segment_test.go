package netlist

import (
	"testing"

	"repro/internal/rng"
)

// checkSegmented splits nl into k stages and verifies the composed
// evaluation equals the original over random stimulus.
func checkSegmented(t *testing.T, nl *Netlist, k int, seed uint64) []*Netlist {
	t.Helper()
	stages, err := Segment(nl, k)
	if err != nil {
		t.Fatalf("segment %s into %d: %v", nl.Name, k, err)
	}
	golden := NewSimulator(nl)
	src := rng.New(seed)
	for cyc := 0; cyc < 32; cyc++ {
		in := make([]bool, nl.NumInputs())
		for i := range in {
			in[i] = src.Bool()
		}
		want := golden.Eval(in)
		got := EvalSegments(stages, nl, in)
		for o := range want {
			if want[o] != got[o] {
				t.Fatalf("%s k=%d cycle %d output %d (%s): segmented %v, want %v",
					nl.Name, k, cyc, o, nl.OutputNames()[o], got[o], want[o])
			}
		}
	}
	return stages
}

func TestSegmentLibraryCircuits(t *testing.T) {
	for _, tc := range []struct {
		nl *Netlist
		k  int
	}{
		{Multiplier(6), 2},
		{Multiplier(6), 4},
		{Adder(16), 3},
		{ALU(8), 2},
		{PopCount(16), 3},
		{CLZ(16), 2},
		{SortNet4(4), 3},
	} {
		stages := checkSegmented(t, tc.nl, tc.k, 7)
		if len(stages) != tc.k {
			t.Fatalf("%s: %d stages, want %d", tc.nl.Name, len(stages), tc.k)
		}
	}
}

func TestSegmentStagesAreSmaller(t *testing.T) {
	nl := Multiplier(8)
	stages := checkSegmented(t, nl, 4, 9)
	total := 0
	for _, s := range stages {
		if s.NumGates() >= nl.NumGates() {
			t.Fatalf("stage %s as big as the whole", s.Name)
		}
		total += s.NumGates()
	}
	if total < nl.NumGates() {
		t.Fatalf("stages dropped logic: %d < %d", total, nl.NumGates())
	}
	sizes := SegmentSizes(stages)
	if len(sizes) != 4 {
		t.Fatal("sizes length")
	}
}

func TestSegmentSingleStageIsWhole(t *testing.T) {
	nl := Adder(8)
	stages, err := Segment(nl, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 1 {
		t.Fatalf("%d stages", len(stages))
	}
	if stages[0].NumGates() != nl.NumGates() {
		t.Fatalf("gates %d vs %d", stages[0].NumGates(), nl.NumGates())
	}
	checkSegmented(t, nl, 1, 3)
}

func TestSegmentClampsToDepth(t *testing.T) {
	nl := Parity(4) // depth 3
	stages, err := Segment(nl, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) > nl.Depth() {
		t.Fatalf("%d stages exceed depth %d", len(stages), nl.Depth())
	}
}

func TestSegmentRejectsSequential(t *testing.T) {
	if _, err := Segment(Counter(8), 2); err == nil {
		t.Fatal("sequential circuit segmented")
	}
}

func TestSegmentRejectsBadK(t *testing.T) {
	if _, err := Segment(Adder(4), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestSegmentRandomCircuits(t *testing.T) {
	for rep := 0; rep < 6; rep++ {
		src := rng.New(uint64(300 + rep))
		nl := Random(src, RandomConfig{Inputs: 8, Outputs: 6, Gates: 70, ConstProb: 0.1})
		for _, k := range []int{2, 3} {
			checkSegmented(t, nl, k, uint64(rep))
		}
	}
}

func TestSegmentPassThroughOutputs(t *testing.T) {
	// An output wired straight to an input must survive segmentation.
	b := NewBuilder("passthru")
	a := b.Input("a")
	c := b.Input("c")
	b.Output("y", a)
	b.Output("z", b.And(a, c))
	nl := b.MustBuild()
	checkSegmented(t, nl, 1, 5)
}

func TestSegmentBoundaryInterfaceStable(t *testing.T) {
	nl := Multiplier(6)
	a, err := Segment(nl, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Segment(nl, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		an, bn := sortedWireNames(a[i]), sortedWireNames(b[i])
		if len(an) != len(bn) {
			t.Fatalf("stage %d interface not deterministic", i)
		}
		for j := range an {
			if an[j] != bn[j] {
				t.Fatalf("stage %d interface differs at %d", i, j)
			}
		}
	}
}
