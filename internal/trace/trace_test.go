package trace

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		ID:      "T9",
		Title:   "sample",
		Note:    "testing rendering",
		Columns: []string{"name", "value", "ratio"},
	}
	t.AddRow("alpha", 42, 1.5)
	t.AddRow("beta-long-name", 7, 0.25)
	return t
}

func TestAddRowFormatting(t *testing.T) {
	tb := sample()
	if tb.Rows[0][1] != "42" {
		t.Fatalf("int cell %q", tb.Rows[0][1])
	}
	if tb.Rows[0][2] != "1.500" {
		t.Fatalf("float cell %q", tb.Rows[0][2])
	}
}

func TestRenderAligned(t *testing.T) {
	s := sample().String()
	if !strings.Contains(s, "== T9: sample ==") {
		t.Fatalf("missing header:\n%s", s)
	}
	if !strings.Contains(s, "testing rendering") {
		t.Fatal("missing note")
	}
	lines := strings.Split(s, "\n")
	var header, row string
	for i, l := range lines {
		if strings.HasPrefix(l, "name") {
			header = l
			row = lines[i+2]
		}
	}
	if header == "" {
		t.Fatalf("no column header:\n%s", s)
	}
	// The "value" column must start at the same offset in header and rows.
	if strings.Index(header, "value") < 0 {
		t.Fatal("no value column")
	}
	if !strings.HasPrefix(row, "alpha") {
		t.Fatalf("row misaligned: %q", row)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines %d", len(lines))
	}
	if lines[0] != "name,value,ratio" {
		t.Fatalf("csv header %q", lines[0])
	}
	if lines[1] != "alpha,42,1.500" {
		t.Fatalf("csv row %q", lines[1])
	}
}

func TestEmptyTableRenders(t *testing.T) {
	tb := &Table{ID: "X", Title: "empty", Columns: []string{"a"}}
	if !strings.Contains(tb.String(), "empty") {
		t.Fatal("empty table failed to render")
	}
}
