package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Timeline event sources.
const (
	// SourceSched marks events from the host-OS scheduler.
	SourceSched = "sched"
	// SourceDevice marks events from the device-side residency ledger.
	SourceDevice = "device"
)

// TimelineEvent is one entry of a merged scheduler+device timeline. Both
// layers flatten into the same shape: who (Task), when (At), where it
// came from (Source), what happened (Kind) and any detail the source
// provides ("adder8 @x=0 w=3 cost=1.2ms"). Events serialize to JSON
// (the vfpgad job API returns merged timelines); At is virtual
// nanoseconds.
type TimelineEvent struct {
	At     sim.Time `json:"at_ns"`
	Source string   `json:"source"`         // SourceSched or SourceDevice
	Task   string   `json:"task,omitempty"` // "" for system operations
	Kind   string   `json:"kind"`           // event kind within the source ("run", "load", ...)
	Detail string   `json:"detail,omitempty"`
}

// Timeline is a merged, time-ordered event sequence from several sources.
// Build one with Add and Sort (or core.MergeTimeline), then Render it.
type Timeline struct {
	Events []TimelineEvent
}

// Add appends an event.
func (tl *Timeline) Add(e TimelineEvent) { tl.Events = append(tl.Events, e) }

// sourceRank orders events at equal timestamps: the scheduler decision
// precedes the device operations it causes.
func sourceRank(s string) int {
	if s == SourceSched {
		return 0
	}
	return 1
}

// Sort orders events by time, scheduler before device at equal times; the
// sort is stable, so each source's internal causal order survives. After
// Sort, equal inputs render byte-identically.
func (tl *Timeline) Sort() {
	sort.SliceStable(tl.Events, func(i, j int) bool {
		a, b := tl.Events[i], tl.Events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return sourceRank(a.Source) < sourceRank(b.Source)
	})
}

// Render writes the timeline as aligned text, one event per line:
//
//	 time  source  task      event
//	1.2ms  sched   encoder   run
//	1.2ms  device  encoder   load adder8 @x=0 w=3 cost=806us
func (tl *Timeline) Render(w io.Writer) error {
	taskW := 4
	for _, e := range tl.Events {
		if len(e.Task) > taskW {
			taskW = len(e.Task)
		}
	}
	for _, e := range tl.Events {
		task := e.Task
		if task == "" {
			task = "-"
		}
		line := fmt.Sprintf("%12v  %-6s  %-*s  %s", e.At, e.Source, taskW, task, e.Kind)
		if e.Detail != "" {
			line += " " + e.Detail
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(line, " ")); err != nil {
			return err
		}
	}
	return nil
}

// String renders the timeline to a string.
func (tl *Timeline) String() string {
	var b strings.Builder
	if err := tl.Render(&b); err != nil {
		return err.Error()
	}
	return b.String()
}
