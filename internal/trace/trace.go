// Package trace holds the result tables the experiment harness produces
// and their renderers: aligned text for the terminal, CSV for analysis.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one experiment result: the rows of a paper table or the series
// of a paper figure.
type Table struct {
	ID      string // experiment id, e.g. "T1" or "F3"
	Title   string
	Note    string // one-line interpretation (the claim being tested)
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each value with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "   %s\n", t.Note); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// WriteCSV writes the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
