// Multi-board virtualization — the paper's §2 outlook: "a computing
// system composed only of FPGA-based boards so that the whole system
// operation can be virtualized". The same storage workload runs on one
// big board and on four quarter-size boards managed as a single virtual
// resource by core.MultiManager.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/sim"
	"repro/internal/workload"
)

func run(boards, colsEach int) error {
	cfg := workload.DefaultStorage()
	cfg.Requests = 20
	cfg.MeanInterval = 800 * sim.Microsecond
	set := workload.Storage(cfg)

	opt := core.DefaultOptions()
	opt.Geometry.Cols, opt.Geometry.Rows = colsEach, 16
	k := sim.New()
	var engines []*core.Engine
	for i := 0; i < boards; i++ {
		e := core.NewEngine(opt)
		for _, nl := range set.Circuits {
			if err := e.AddCircuit(nl); err != nil {
				return err
			}
		}
		engines = append(engines, e)
	}
	mm, err := core.NewMultiManager(k, engines, core.PartitionConfig{
		Mode: core.VariablePartitions, Fit: core.BestFit, GC: true, Rotate: true,
	})
	if err != nil {
		return err
	}
	osim := hostos.New(k, hostos.Config{
		Policy: hostos.RR, TimeSlice: sim.Millisecond,
		CtxSwitch: 50 * sim.Microsecond, Syscall: 10 * sim.Microsecond,
	}, mm)
	mm.AttachOS(osim)
	set.Spawn(osim)
	k.Run()
	if !osim.AllDone() {
		return fmt.Errorf("unfinished requests")
	}
	var mean sim.Time
	for _, t := range osim.Tasks() {
		mean += t.Turnaround() / sim.Time(len(osim.Tasks()))
	}
	perBoard := ""
	for i, b := range mm.Boards {
		if i > 0 {
			perBoard += " "
		}
		perBoard += fmt.Sprintf("%d", b.E.M.Loads.Value())
	}
	fmt.Printf("%d board(s) x %2d cols: makespan %-12v mean turnaround %-12v loads/board [%s] suspensions %d\n",
		boards, colsEach, osim.Makespan(), mean, perBoard, mm.TotalBlocks())
	return nil
}

func main() {
	fmt.Println("storage workload (20 RAID-style requests) over equal total area:")
	fmt.Println()
	for _, cfg := range []struct{ boards, cols int }{{1, 12}, {2, 6}, {4, 3}} {
		if err := run(cfg.boards, cfg.cols); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	fmt.Println("reading: several small boards behave like one device until a")
	fmt.Println("circuit no longer fits a single board — the granularity limit")
	fmt.Println("of board-level virtualization (see experiment F8).")
}
