// Embedded diagnosis — the paper's §5 scenario: a high-priority control
// loop owns the FPGA most of the time, while periodic low-priority test
// and tuning functions run "non-frequent functions" in hardware. The
// overlay manager keeps the control datapath resident and swaps the rare
// diagnostics through the overlay area.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	set := workload.Diagnosis(workload.DefaultDiagnosis())

	opt := core.DefaultOptions()
	opt.Geometry.Cols, opt.Geometry.Rows = 24, 16
	k := sim.New()
	e := core.NewEngine(opt)
	for _, nl := range set.Circuits {
		if err := e.AddCircuit(nl); err != nil {
			log.Fatal(err)
		}
	}
	// The control-law datapath (first circuit) is the frequent common
	// function: it stays resident. Diagnostics overlay on the right.
	resident := set.CircuitNames()[:1]
	om, initCost, err := core.NewOverlayManager(k, e, resident)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resident control circuit %v downloaded at boot in %v\n", resident, initCost)

	osim := hostos.New(k, hostos.Config{
		Policy: hostos.Priority, TimeSlice: 5 * sim.Millisecond,
		CtxSwitch: 50 * sim.Microsecond, Syscall: 10 * sim.Microsecond,
	}, om)
	set.Spawn(osim)
	k.Run()
	if !osim.AllDone() {
		log.Fatal("unfinished tasks")
	}

	fmt.Println()
	fmt.Printf("%-10s %-4s %12s %12s %12s %9s\n", "task", "prio", "turnaround", "hw", "overhead", "preempts")
	for _, t := range osim.Tasks() {
		fmt.Printf("%-10s %-4d %12v %12v %12v %9d\n",
			t.Name, t.Priority, t.Turnaround(), t.HWTime, t.Overhead, t.Preemptions)
	}
	fmt.Println()
	fmt.Printf("overlay swaps: %d loads after boot, %d evictions; overlay now holds %q\n",
		e.M.Loads.Value()-int64(len(resident)), e.M.Evictions.Value(), om.OverlayCircuit())
	fmt.Println()
	fmt.Println("reading: the control loop never pays reconfiguration (resident hit),")
	fmt.Println("and preemptive priority keeps its turnaround tight while diagnosis")
	fmt.Println("and tuning alternate through the overlay area.")
}
