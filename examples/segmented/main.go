// Segmented execution — the paper's §2 segmentation, end to end with real
// data: an 8x8 multiplier is mechanically cut into three self-contained
// stages, each stage is compiled and loaded alone into a device too small
// for the whole circuit, and the host carries the boundary wires between
// stage executions. The final product is bit-exact.
package main

import (
	"fmt"
	"log"

	"repro/internal/bitstream"
	"repro/internal/compile"
	"repro/internal/fabric"
	"repro/internal/netlist"
)

func main() {
	whole := netlist.Multiplier(8)
	fmt.Println("whole circuit:", whole)

	const k = 4
	stages, err := netlist.Segment(whole, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segmented into %d stages, gate counts %v\n", len(stages), netlist.SegmentSizes(stages))

	// Compile every stage and find the largest footprint.
	var circuits []*compile.Circuit
	maxW, maxH, maxPins := 0, 0, 0
	for _, st := range stages {
		c, err := compile.Compile(st, compile.Options{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		circuits = append(circuits, c)
		if c.BS.W > maxW {
			maxW = c.BS.W
		}
		if c.BS.H > maxH {
			maxH = c.BS.H
		}
		if n := c.BS.NumIn + c.BS.NumOut; n > maxPins {
			maxPins = n
		}
		fmt.Println("  compiled", c)
	}

	// A device sized for the largest stage only — the whole multiplier
	// would not fit.
	geom := fabric.Geometry{
		Cols: maxW + 1, Rows: maxH + 1,
		TracksPerChannel: 12,
		PinsPerSide:      (maxPins + 3) / 4,
	}
	wholeC, err := compile.Compile(whole, compile.Options{Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	fits := wholeC.BS.W <= geom.Cols && wholeC.BS.H <= geom.Rows
	if fits {
		log.Fatalf("device %v unexpectedly fits the whole %dx%d circuit; raise k", geom, wholeC.BS.W, wholeC.BS.H)
	}
	fmt.Printf("\ndevice: %v (%d CLBs); whole circuit needs %dx%d (%d CLBs) — does not fit\n",
		geom, geom.NumCLBs(), wholeC.BS.W, wholeC.BS.H, wholeC.Cells())

	dev := fabric.NewDevice(geom)
	tm := fabric.DefaultTiming()

	// The host-side wire environment, exactly what the VFPGA manager's
	// segmentation protocol carries between loads.
	a, b := uint64(173), uint64(219)
	env := map[string]bool{}
	for i := 0; i < 8; i++ {
		env[fmt.Sprintf("a[%d]", i)] = a&(1<<uint(i)) != 0
		env[fmt.Sprintf("b[%d]", i)] = b&(1<<uint(i)) != 0
	}

	for si, c := range circuits {
		// Load this stage alone (dynamic loading of one segment).
		dev.ClearRegion(geom.Bounds())
		binding := &bitstream.PinBinding{}
		p := 0
		for i := 0; i < c.BS.NumIn; i++ {
			binding.In = append(binding.In, p)
			p++
		}
		for i := 0; i < c.BS.NumOut; i++ {
			binding.Out = append(binding.Out, p)
			p++
		}
		cells, pins, err := c.BS.Apply(dev, 1, 1, binding)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stage %d: loaded %d cells in %v; ", si+1, cells, tm.PartialConfigTime(cells, pins))

		// Present the stage's inputs from the environment.
		for i, name := range c.Netlist.InputNames() {
			v, ok := env[name]
			if !ok {
				log.Fatalf("stage %d needs undefined wire %s", si+1, name)
			}
			dev.SetPin(binding.In[i], v)
		}
		out, err := dev.Eval()
		if err != nil {
			log.Fatal(err)
		}
		for i, name := range c.Netlist.OutputNames() {
			env[name] = out[binding.Out[i]]
		}
		fmt.Printf("produced %d wires\n", c.BS.NumOut)
	}

	// Collect the product from the final environment.
	var product uint64
	for i := 0; i < 16; i++ {
		if env[fmt.Sprintf("p[%d]", i)] {
			product |= 1 << uint(i)
		}
	}
	fmt.Printf("\n%d x %d = %d (expected %d)\n", a, b, product, a*b)
	if product != a*b {
		log.Fatal("MISMATCH")
	}
	fmt.Println("the device never held more than one stage — §2 segmentation works.")
}
