// Quickstart: compile a circuit through the CAD flow, download it onto
// the simulated FPGA, and push real data through the device pins —
// everything the VFPGA managers build on, in ~100 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/bitstream"
	"repro/internal/compile"
	"repro/internal/fabric"
	"repro/internal/netlist"
)

func main() {
	// 1. A gate-level circuit from the library: a 16-bit adder.
	nl := netlist.Adder(16)
	fmt.Println("netlist:", nl)

	// 2. Compile: technology map to 4-LUTs, place, route, encode.
	c, err := compile.Compile(nl, compile.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled:", c)
	fmt.Println("bitstream:", c.BS)

	// 3. A physical device (XC4013-class) and a pin binding.
	dev := fabric.NewDevice(fabric.DefaultGeometry())
	binding := &bitstream.PinBinding{}
	pin := 0
	for i := 0; i < c.BS.NumIn; i++ {
		binding.In = append(binding.In, pin)
		pin++
	}
	for i := 0; i < c.BS.NumOut; i++ {
		binding.Out = append(binding.Out, pin)
		pin++
	}

	// 4. Download. The returned cell/pin counts drive the timing model.
	cells, pins, err := c.BS.Apply(dev, 0, 0, binding)
	if err != nil {
		log.Fatal(err)
	}
	tm := fabric.DefaultTiming()
	fmt.Printf("downloaded %d cells + %d pins in %v (partial reconfiguration)\n",
		cells, pins, tm.PartialConfigTime(cells, pins))

	// 5. Drive data through the pins: compute 12345 + 54321.
	a, b := uint64(12345), uint64(54321)
	for i := 0; i < 16; i++ {
		dev.SetPin(binding.In[i], a&(1<<uint(i)) != 0)
		dev.SetPin(binding.In[16+i], b&(1<<uint(i)) != 0)
	}
	dev.SetPin(binding.In[32], false) // cin
	out, err := dev.Eval()
	if err != nil {
		log.Fatal(err)
	}
	var sum uint64
	for i := 0; i < 17; i++ { // sum[0..15] + cout
		if out[binding.Out[i]] {
			sum |= 1 << uint(i)
		}
	}
	fmt.Printf("fabric computed %d + %d = %d (expected %d)\n", a, b, sum, a+b)

	// 6. Relocation — the property virtual partitions depend on: the same
	// bitstream works at any origin.
	binding2 := &bitstream.PinBinding{}
	for i := 0; i < c.BS.NumIn; i++ {
		binding2.In = append(binding2.In, pin)
		pin++
	}
	for i := 0; i < c.BS.NumOut; i++ {
		binding2.Out = append(binding2.Out, pin)
		pin++
	}
	if _, _, err := c.BS.Apply(dev, c.BS.W+2, 4, binding2); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		dev.SetPin(binding2.In[i], true) // a = 0xffff
		dev.SetPin(binding2.In[16+i], false)
	}
	dev.SetPin(binding2.In[32], true) // cin = 1
	out, err = dev.Eval()
	if err != nil {
		log.Fatal(err)
	}
	var sum2 uint64
	for i := 0; i < 17; i++ {
		if out[binding2.Out[i]] {
			sum2 |= 1 << uint(i)
		}
	}
	fmt.Printf("relocated copy computed 0xffff + 0 + 1 = %#x (expected 0x10000)\n", sum2)
	fmt.Printf("device now holds %d configured CLBs (two adders side by side)\n", dev.UsedCells())
}
