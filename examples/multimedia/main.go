// Multimedia codec switching — the paper's first §5 scenario: several
// media streams, each needing a different compression/decompression
// datapath, share one small FPGA through dynamic loading. Compare what
// the same workload costs in software or on a device big enough to hold
// every codec at once.
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/sim"
	"repro/internal/workload"
)

func run(name string, cols int, mk func(*sim.Kernel, *core.Engine, *workload.Set) (hostos.FPGA, error)) error {
	set := workload.Multimedia(workload.DefaultMultimedia())
	opt := core.DefaultOptions()
	opt.Geometry.Cols, opt.Geometry.Rows = cols, 16
	k := sim.New()
	e := core.NewEngine(opt)
	for _, nl := range set.Circuits {
		if err := e.AddCircuit(nl); err != nil {
			return err
		}
	}
	mgr, err := mk(k, e, set)
	if err != nil {
		return err
	}
	osim := hostos.New(k, hostos.Config{
		Policy: hostos.RR, TimeSlice: 5 * sim.Millisecond,
		CtxSwitch: 50 * sim.Microsecond, Syscall: 10 * sim.Microsecond,
	}, mgr)
	if att, ok := mgr.(interface{ AttachOS(*hostos.OS) }); ok {
		att.AttachOS(osim)
	}
	set.Spawn(osim)
	k.Run()
	if !osim.AllDone() {
		return fmt.Errorf("%s: unfinished tasks", name)
	}
	var mean sim.Time
	for _, t := range osim.Tasks() {
		mean += t.Turnaround() / sim.Time(len(osim.Tasks()))
	}
	fmt.Printf("%-28s cols=%-3d makespan=%-12v mean-turnaround=%-12v reloads=%d\n",
		name, cols, osim.Makespan(), mean, e.M.Loads.Value())
	return nil
}

func main() {
	fmt.Println("multimedia: 4 streams x 24 frames, codec standard switches every 8 frames")
	fmt.Println()

	// A small device: only one codec fits at a time -> dynamic loading.
	err := run("VFPGA dynamic (small)", 12, func(k *sim.Kernel, e *core.Engine, _ *workload.Set) (hostos.FPGA, error) {
		return core.NewDynamicLoader(k, e), nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The same small device with variable partitions: codecs shared by
	// several streams stay loaded side by side while they fit.
	err = run("VFPGA partitions (small)", 12, func(k *sim.Kernel, e *core.Engine, _ *workload.Set) (hostos.FPGA, error) {
		return core.NewPartitionManager(k, e, core.PartitionConfig{
			Mode: core.VariablePartitions, Fit: core.BestFit, GC: true, Rotate: true,
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	// The brute-force alternative: a device big enough for all codecs.
	err = run("merged big FPGA", 32, func(k *sim.Kernel, e *core.Engine, set *workload.Set) (hostos.FPGA, error) {
		m, _, err := baseline.NewMerged(k, e, set.CircuitNames())
		return m, err
	})
	if err != nil {
		log.Fatal(err)
	}

	// And the no-FPGA null hypothesis.
	err = run("software only", 12, func(k *sim.Kernel, e *core.Engine, _ *workload.Set) (hostos.FPGA, error) {
		return baseline.NewSoftware(e, 20), nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("reading: the small VFPGA tracks the big FPGA far closer than software,")
	fmt.Println("which is the paper's cost-reduction argument for virtualization.")
}
