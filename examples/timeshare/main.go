// Time-sharing with state save/restore — the paper's §3 requirement that
// a preemptable sequential circuit be observable and controllable, shown
// twice:
//
//  1. at the device level, with real flip-flop values: a counter is run,
//     preempted (state read back), its region reused by another circuit,
//     then reloaded and restored — and continues from exactly where it
//     stopped;
//  2. at the OS level: two sequential tasks time-share one device under
//     round-robin, and the save/restore accounting shows no lost cycles —
//     with the merged scheduler+device timeline showing each preemption's
//     readback and each resume's restore in causal order.
package main

import (
	"fmt"
	"log"

	"repro/internal/bitstream"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hostos"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/workload"
)

func deviceLevelDemo() {
	fmt.Println("-- device level: readback / restore round trip --")
	counter := compile.MustCompile(netlist.Counter(8), compile.Options{Seed: 7})
	parity := compile.MustCompile(netlist.Parity(16), compile.Options{Seed: 8})
	dev := fabric.NewDevice(fabric.DefaultGeometry())

	bind := func(c *compile.Circuit, base int) *bitstream.PinBinding {
		b := &bitstream.PinBinding{}
		for i := 0; i < c.BS.NumIn; i++ {
			b.In = append(b.In, base+i)
		}
		for i := 0; i < c.BS.NumOut; i++ {
			b.Out = append(b.Out, base+c.BS.NumIn+i)
		}
		return b
	}
	b := bind(counter, 0)
	if _, _, err := counter.BS.Apply(dev, 0, 0, b); err != nil {
		log.Fatal(err)
	}
	dev.SetPin(b.In[0], true) // enable
	for i := 0; i < 37; i++ {
		if _, err := dev.Step(); err != nil {
			log.Fatal(err)
		}
	}
	read := func(b *bitstream.PinBinding) uint64 {
		out, err := dev.Eval()
		if err != nil {
			log.Fatal(err)
		}
		var v uint64
		for i := 0; i < 8; i++ {
			if out[b.Out[i]] {
				v |= 1 << uint(i)
			}
		}
		return v
	}
	fmt.Printf("counter ran 37 cycles, value = %d\n", read(b))

	region := counter.BS.Region(0, 0)
	saved := dev.ReadRegionState(region)
	tm := fabric.DefaultTiming()
	fmt.Printf("preempt: read back %d flip-flops in %v\n", len(saved), tm.ReadbackTime(len(saved)))

	dev.ClearRegion(region)
	if _, _, err := parity.BS.Apply(dev, 0, 0, bind(parity, 100)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("region reused by parity16 while the counter task was switched out")

	dev.ClearRegion(parity.BS.Region(0, 0))
	if _, _, err := counter.BS.Apply(dev, 0, 0, b); err != nil {
		log.Fatal(err)
	}
	dev.WriteRegionState(region, saved)
	dev.SetPin(b.In[0], true)
	fmt.Printf("resume: reloaded + restored, value = %d (continues from 37)\n\n", read(b))
}

func osLevelDemo() {
	fmt.Println("-- OS level: two sequential tasks time-share the device --")
	opt := core.DefaultOptions()
	opt.Geometry = fabric.Geometry{Cols: 16, Rows: 16, TracksPerChannel: 12, PinsPerSide: 32}
	opt.State = core.SaveRestore
	k := sim.New()
	e := core.NewEngine(opt)
	for _, nl := range []*netlist.Netlist{netlist.Counter(8), netlist.Accumulator(8)} {
		if err := e.AddCircuit(nl); err != nil {
			log.Fatal(err)
		}
	}
	d := core.NewDynamicLoader(k, e)
	devLog := core.NewDeviceLog(0)
	e.Ledger().AttachLog(devLog)
	osim := hostos.New(k, hostos.Config{
		Policy: hostos.RR, TimeSlice: 2 * sim.Millisecond,
		CtxSwitch: 50 * sim.Microsecond, Syscall: 10 * sim.Microsecond,
	}, d)
	schedLog := hostos.NewEventLog(0)
	osim.AttachTrace(schedLog)
	set := &workload.Set{Tasks: []workload.TaskSpec{
		{Name: "metronome", Program: []hostos.Op{
			hostos.UseFPGA(hostos.FPGARequest{Circuit: "counter8", Cycles: 300_000}),
		}},
		{Name: "integrator", Program: []hostos.Op{
			hostos.UseFPGA(hostos.FPGARequest{Circuit: "acc8", Cycles: 300_000}),
		}},
	}}
	set.Spawn(osim)
	k.Run()
	circuitOf := map[string]string{"metronome": "counter8", "integrator": "acc8"}
	for _, t := range osim.Tasks() {
		pure := sim.Time(300_000) * e.Lib[circuitOf[t.Name]].ClockPeriod
		fmt.Printf("%-11s hw=%v (pure %v, lost %v), overhead=%v, preemptions=%d\n",
			t.Name, t.HWTime, pure, t.HWTime-pure, t.Overhead, t.Preemptions)
	}
	fmt.Printf("manager: %d loads, %d readbacks, %d restores — every preemption saved state\n",
		e.M.Loads.Value(), e.M.Readbacks.Value(), e.M.Restores.Value())

	// The merged timeline interleaves both layers: each scheduler decision
	// (sched) followed by the device work it caused (device).
	tl := core.MergeTimeline(schedLog, devLog)
	const show = 24
	fmt.Printf("\nmerged scheduler+device timeline (first %d of %d events):\n", show, len(tl.Events))
	head := *tl
	if len(head.Events) > show {
		head.Events = head.Events[:show]
	}
	fmt.Print(head.String())
}

func main() {
	deviceLevelDemo()
	osLevelDemo()
}
