// Telecom protocol adaptation — the paper's §5 scenario: communication
// sessions arrive over time, each speaking one protocol (framing CRC,
// scrambler, modulation mapper). Sessions share the FPGA through
// variable partitions; when the device fills up, later sessions suspend
// until space frees — the paper's §4 waiting-state mechanics.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	cfg := workload.DefaultTelecom()
	cfg.Sessions = 16
	cfg.MeanInterval = 500 * sim.Microsecond // a burst of arrivals
	set := workload.Telecom(cfg)

	opt := core.DefaultOptions()
	opt.Geometry.Cols, opt.Geometry.Rows = 2, 16 // deliberately tight
	k := sim.New()
	e := core.NewEngine(opt)
	fmt.Printf("device: %v; compiling %d protocol engines\n", opt.Geometry, len(set.Circuits))
	for _, nl := range set.Circuits {
		if err := e.AddCircuit(nl); err != nil {
			log.Fatal(err)
		}
		c := e.Lib[nl.Name]
		fmt.Printf("  %-12s %2d cols, %3d cells, clock %v\n", c.Name, c.BS.W, c.Cells(), c.ClockPeriod)
	}

	// No rotation: a session keeps its partition until it ends, so excess
	// sessions suspend — the paper's waiting-state behaviour.
	pm, err := core.NewPartitionManager(k, e, core.PartitionConfig{
		Mode: core.VariablePartitions, Fit: core.BestFit, GC: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	osim := hostos.New(k, hostos.Config{
		Policy: hostos.RR, TimeSlice: 2 * sim.Millisecond,
		CtxSwitch: 50 * sim.Microsecond, Syscall: 10 * sim.Microsecond,
	}, pm)
	pm.AttachOS(osim)
	set.Spawn(osim)
	k.Run()
	if !osim.AllDone() {
		log.Fatal("unfinished sessions")
	}

	fmt.Println()
	fmt.Printf("%-10s %-9s %12s %12s %12s\n", "session", "arrival", "turnaround", "blocked", "overhead")
	for _, t := range osim.Tasks() {
		fmt.Printf("%-10s %-9v %12v %12v %12v\n",
			t.Name, t.Created, t.Turnaround(), t.BlockWait, t.Overhead)
	}
	fmt.Println()
	fmt.Printf("makespan %v; %d suspensions, %d loads, %d evictions, %d GC runs (%d relocations)\n",
		osim.Makespan(), e.M.Blocks.Value(), e.M.Loads.Value(),
		e.M.Evictions.Value(), e.M.GCRuns.Value(), e.M.Relocations.Value())
	total, largest := pm.FreeCols()
	fmt.Printf("final free space: %d cols (largest strip %d) — all partitions merged back\n", total, largest)
	fmt.Println()
	fmt.Println("reading: popular protocols stay resident in their partitions across")
	fmt.Println("sessions; suspensions appear only while the 2-column device is full.")
}
